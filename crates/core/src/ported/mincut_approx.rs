//! (1±ε)-approximate weighted minimum cut in `O(1)` rounds (Theorem C.4,
//! after Ghaffari–Nowicki \[31\]).
//!
//! Karger-style skeleton sampling: with sampling probability
//! `p = Θ(log n / (ε²·λ))` every cut of the skeleton concentrates within
//! `(1±ε)` of `p` times its true weight, so `min-cut(skeleton)/p` is a
//! `(1±ε)` estimate. Since `λ` is unknown, all `O(log W·n)` geometric
//! guesses run in parallel (here: sequentially, with the parallel round
//! figure reported — this legacy loop survives as the equivalence oracle
//! for the engine's batched path in `mpc_exec::multiplex`, which runs all
//! guesses interleaved and achieves the parallel figure for real); the
//! right guess is the sparsest skeleton that is still
//! connected and has `Ω(log n/ε²)` min degree — coarser guesses
//! under-sample and disconnect, finer ones only waste memory. As the paper
//! notes, the whole procedure reduces to connectivity plus one local
//! min-cut computation on the large machine.

use mpc_graph::{Edge, VertexId};
use mpc_runtime::primitives::{gather_to, sum_to};
use mpc_runtime::{Cluster, ModelViolation, ShardedVec};
use rand::Rng;
use std::collections::HashMap;

/// Result of the approximate min-cut.
#[derive(Clone, Debug, PartialEq)]
pub struct ApproxMinCut {
    /// The (1±ε) estimate of the minimum cut weight.
    pub estimate: f64,
    /// The guess `λ̂` that produced the estimate.
    pub lambda_guess: u64,
    /// Skeleton edge count at the chosen guess.
    pub skeleton_edges: usize,
    /// Rounds a parallel execution would need (max over guesses).
    pub parallel_rounds: u64,
}

/// The sampling constant `c = 3·ln n / ε²` (`p = c/λ̂` per guess).
pub fn c_sample_for(n: usize, epsilon: f64) -> f64 {
    (n.max(2) as f64).ln() * 3.0 / (epsilon * epsilon)
}

/// Geometric guesses for `λ`, largest first (sparsest skeleton first).
pub fn lambda_guesses(total_weight: u64) -> Vec<u64> {
    let mut guesses: Vec<u64> = Vec::new();
    let mut g = total_weight.max(1);
    while g >= 1 {
        guesses.push(g);
        if g == 1 {
            break;
        }
        g /= 2;
    }
    guesses
}

/// The large machine's skeleton budget: a sixth of its capacity.
pub fn skeleton_budget(large_capacity: usize) -> u64 {
    (large_capacity / 6) as u64
}

/// What one guess's gathered skeleton implies.
#[derive(Clone, Debug, PartialEq)]
pub enum SkeletonVerdict {
    /// Isolated vertices or a disconnected skeleton: `λ̂` too large.
    Disconnected,
    /// Connected, but too little sampled weight crosses the min cut for
    /// the concentration bound to apply: try a finer guess.
    NotConcentrated,
    /// A usable `(1±ε)` estimate: `min-cut(skeleton)/p`.
    Estimate(f64),
}

/// The local computation on a gathered skeleton, shared by the legacy loop
/// body and the engine program: connectivity check, Stoer–Wagner, and the
/// concentration threshold.
pub fn evaluate_skeleton(n: usize, sk: &[(Edge, u32)], c_sample: f64, p: f64) -> SkeletonVerdict {
    let mut ids: Vec<VertexId> = Vec::new();
    let mut index: HashMap<VertexId, u32> = HashMap::new();
    for (e, _) in sk {
        for v in [e.u, e.v] {
            index.entry(v).or_insert_with(|| {
                ids.push(v);
                (ids.len() - 1) as u32
            });
        }
    }
    if ids.len() < n {
        // Isolated vertices ⇒ skeleton disconnected at this guess.
        return SkeletonVerdict::Disconnected;
    }
    let sw_edges: Vec<(u32, u32, u64)> = sk
        .iter()
        .map(|(e, c)| (index[&e.u], index[&e.v], u64::from(*c)))
        .collect();
    let Some(mc) = mpc_graph::mincut::stoer_wagner(ids.len(), &sw_edges) else {
        return SkeletonVerdict::Disconnected; // λ̂ too large, try finer
    };
    // Require enough sampled weight across the cut for concentration.
    if (mc.weight as f64) < c_sample / 4.0 {
        return SkeletonVerdict::NotConcentrated;
    }
    SkeletonVerdict::Estimate(mc.weight as f64 / p)
}

/// Estimates the weighted minimum cut within `(1±ε)` w.h.p.
///
/// # Errors
///
/// Propagates capacity violations in strict mode. Returns an estimate of 0
/// for disconnected inputs.
pub fn approximate_min_cut(
    cluster: &mut Cluster,
    n: usize,
    edges: &ShardedVec<Edge>,
    epsilon: f64,
) -> Result<ApproxMinCut, ModelViolation> {
    assert!(
        (0.0..1.0).contains(&epsilon) && epsilon > 0.0,
        "epsilon in (0,1)"
    );
    let large = cluster.large().expect("min cut requires a large machine");
    let total_weight: u64 = edges.iter().map(|(_, e)| e.w).sum();
    let c_sample = c_sample_for(n, epsilon);
    let guesses = lambda_guesses(total_weight);

    let participants: Vec<usize> = (0..cluster.machines()).collect();
    let mut parallel_rounds = 0u64;
    for guess in guesses {
        let before = cluster.rounds();
        let p = (c_sample / guess as f64).min(1.0);
        // Weighted skeleton: an edge of weight w contributes Binomial(w, p)
        // unweighted copies.
        let mut skeleton: ShardedVec<(Edge, u32)> = ShardedVec::new(cluster);
        for mid in 0..edges.machines() {
            let shard = skeleton.shard_mut(mid);
            for e in edges.shard(mid) {
                let copies = sample_binomial(cluster.rng(mid), e.w, p);
                if copies > 0 {
                    shard.push((*e, copies));
                }
            }
        }
        // Volume check before gathering (abort this guess if oversampled).
        let counts: Vec<u64> = (0..cluster.machines())
            .map(|mid| skeleton.shard(mid).len() as u64)
            .collect();
        let total = sum_to(cluster, "xcut.count", &participants, counts, large)?;
        let budget = skeleton_budget(cluster.capacity(large));
        if total > budget {
            // Finer guesses only get denser; the current estimate stands.
            parallel_rounds = parallel_rounds.max(cluster.rounds() - before);
            break;
        }
        let sk = gather_to(cluster, "xcut.gather", &skeleton, large)?;
        cluster.account("xcut.large", large, sk.len() * 3)?;
        parallel_rounds = parallel_rounds.max(cluster.rounds() - before);
        // Local: connectivity + Stoer–Wagner on the skeleton multigraph.
        let verdict = evaluate_skeleton(n, &sk, c_sample, p);
        cluster.release("xcut.large");
        match verdict {
            SkeletonVerdict::Disconnected | SkeletonVerdict::NotConcentrated => continue,
            SkeletonVerdict::Estimate(estimate) => {
                return Ok(ApproxMinCut {
                    estimate,
                    lambda_guess: guess,
                    skeleton_edges: sk.len(),
                    parallel_rounds,
                });
            }
        }
    }
    // All guesses failed to produce a connected, concentrated skeleton:
    // either the graph is disconnected (estimate 0) or tiny — fall back to
    // gathering everything if it fits.
    let all = gather_to(cluster, "xcut.fallback", edges, large)?;
    let g = mpc_graph::Graph::new(n, all);
    let est = mpc_graph::mincut::min_cut(&g).map_or(0.0, |m| m.weight as f64);
    Ok(ApproxMinCut {
        estimate: est,
        lambda_guess: 1,
        skeleton_edges: g.m(),
        parallel_rounds,
    })
}

/// Samples Binomial(w, p) with the per-machine RNG (w is small in practice;
/// the loop is local computation and therefore free in the model). Public
/// so the engine program draws the identical per-edge sequence.
pub fn sample_binomial(rng: &mut rand::rngs::SmallRng, w: u64, p: f64) -> u32 {
    if p >= 1.0 {
        return w.min(u32::MAX as u64) as u32;
    }
    let mut c = 0u32;
    // For large w, use a normal approximation to keep simulation fast.
    if w > 64 {
        let mean = w as f64 * p;
        let sd = (w as f64 * p * (1.0 - p)).sqrt();
        let z: f64 = standard_normal(rng);
        return (mean + sd * z).round().clamp(0.0, w as f64) as u32;
    }
    for _ in 0..w {
        if rng.random_bool(p) {
            c += 1;
        }
    }
    c
}

fn standard_normal(rng: &mut rand::rngs::SmallRng) -> f64 {
    // Box–Muller.
    let u1: f64 = rng.random::<f64>().max(1e-12);
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common;
    use mpc_graph::generators;
    use mpc_runtime::ClusterConfig;

    fn run(g: &mpc_graph::Graph, eps: f64, seed: u64) -> ApproxMinCut {
        let mut cluster = Cluster::new(
            ClusterConfig::new(g.n(), g.m())
                .seed(seed)
                .polylog_exponent(1.6),
        );
        let input = common::distribute_edges(&cluster, g);
        approximate_min_cut(&mut cluster, g.n(), &input, eps).unwrap()
    }

    #[test]
    fn estimates_weighted_planted_cuts() {
        let g = generators::planted_cut(20, 0.8, 4, 1).with_random_weights(8, 1);
        let exact = mpc_graph::mincut::min_cut(&g).unwrap().weight as f64;
        let r = run(&g, 0.3, 1);
        assert!(
            r.estimate >= exact * 0.5 && r.estimate <= exact * 1.7,
            "estimate {} vs exact {exact}",
            r.estimate
        );
    }

    #[test]
    fn dense_unweighted_graph() {
        let g = generators::gnm(48, 700, 3);
        let exact = mpc_graph::mincut::min_cut(&g).unwrap().weight as f64;
        let r = run(&g, 0.3, 3);
        assert!(
            (r.estimate - exact).abs() <= exact * 0.7 + 3.0,
            "estimate {} vs exact {exact}",
            r.estimate
        );
    }

    #[test]
    fn disconnected_graph_estimates_zero() {
        let g = generators::random_forest(40, 2, 2); // a forest has cut 0
        let r = run(&g, 0.4, 2);
        assert_eq!(r.estimate, 0.0);
    }
}
