//! Exact minimum spanning tree / forest in `O(log log(m/n))` rounds (§3).
//!
//! The algorithm has two parts:
//!
//! 1. **Doubly-exponential Borůvka** (Lotker et al. \[45\], adapted): in
//!    each step the large machine collects, per current vertex `v`, its
//!    `min(kᵢ, deg(v))` lightest outgoing edges and contracts locally along
//!    provably-minimum outgoing edges (see [`contract_lightest_lists`] for
//!    the saturation-safe variant), then disseminates the rename map so the
//!    small machines relabel and deduplicate their edges. With a collection
//!    budget of `Θ(n)` edges, `kᵢ` squares every step — the
//!    doubly-exponential schedule of the paper — so `O(log log(m/n))` steps
//!    contract the graph to `≈ n²/m` vertices. A large machine with
//!    `n^(1+f)` memory gets a proportionally larger budget, yielding the
//!    generalized Theorem 3.1 schedule.
//! 2. **KKT sampling**: sample each remaining edge with
//!    probability `p`, compute the sampled MSF `F` on the large machine,
//!    disseminate max-edge labels (`mpc-labeling`), keep only F-light edges
//!    (expected `n'/p`, Lemma 3.2), and finish the MST locally.
//!
//! The output forest is reported in terms of *original* input edges, which
//! every contracted edge carries along (the paper's "original graph edge
//! attached to it").

mod contract;
pub mod kkt;

pub use contract::{contract_lightest_lists, ContractionOutcome};

use crate::common;
use mpc_graph::{mst::Forest, Edge, VertexId, WeightKey};
use mpc_runtime::payload::TaggedEdge;
use mpc_runtime::primitives::{aggregate_by_key, gather_to, sum_to, top_t_per_key};
use mpc_runtime::{Cluster, ModelViolation, Payload, ShardedVec};
use std::error::Error;
use std::fmt;

/// Words of a [`TaggedEdge`] (for budget arithmetic).
pub const TAGGED_WORDS: usize = 4;

/// Errors of the MST algorithm.
#[derive(Clone, Debug)]
pub enum MstError {
    /// A capacity violation under strict enforcement.
    Model(ModelViolation),
    /// All KKT sampling repetitions exceeded their volume bounds
    /// (probability `2^{-reps}`; rerun with a different seed or more
    /// repetitions).
    SamplingFailed,
}

impl fmt::Display for MstError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MstError::Model(v) => write!(f, "model violation: {v}"),
            MstError::SamplingFailed => {
                write!(
                    f,
                    "all KKT sampling repetitions exceeded their volume bounds"
                )
            }
        }
    }
}

impl Error for MstError {}

impl From<ModelViolation> for MstError {
    fn from(v: ModelViolation) -> Self {
        MstError::Model(v)
    }
}

/// Tuning knobs for [`heterogeneous_mst_with`].
#[derive(Clone, Debug)]
pub struct MstConfig {
    /// Parallel repetitions of the KKT sampling step (the paper uses
    /// `O(log n)` for high probability; they share rounds).
    pub kkt_repetitions: usize,
    /// Hard cap on Borůvka steps (safety net; the adaptive schedule
    /// terminates in `O(log log(m/n))` steps by itself).
    pub max_boruvka_steps: usize,
}

impl Default for MstConfig {
    fn default() -> Self {
        MstConfig {
            kkt_repetitions: 5,
            max_boruvka_steps: 12,
        }
    }
}

/// Statistics reported alongside the MST.
#[derive(Clone, Debug, Default)]
pub struct MstStats {
    /// Borůvka steps executed.
    pub boruvka_steps: usize,
    /// `(vertices, edges)` of the contracted graph after each step.
    pub contraction_trace: Vec<(usize, usize)>,
    /// Whether the final gather path (tiny remainder) was taken instead of
    /// KKT sampling.
    pub finished_by_direct_gather: bool,
    /// KKT repetition index that succeeded (if sampling ran).
    pub kkt_rep_used: Option<usize>,
    /// Number of F-light edges shipped to the large machine.
    pub f_light_edges: usize,
}

/// Output of the MST algorithm.
#[derive(Clone, Debug)]
pub struct MstResult {
    /// The minimum spanning forest, in original-graph edges.
    pub forest: Forest,
    /// Execution statistics.
    pub stats: MstStats,
}

/// The large machine's collection budget: a quarter of its memory, in
/// edges ([`TAGGED_WORDS`] words each).
pub fn collection_budget(large_capacity: usize) -> usize {
    (large_capacity / (4 * TAGGED_WORDS)).max(8)
}

/// One decision of the MST orchestration loop (shared by the legacy
/// call-style loop and the engine's `MstProgram` coordinator, so both take
/// bit-identical trajectories).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MstMove {
    /// Remainder fits the large machine: gather everything, finish locally.
    FinishGather,
    /// KKT sampling applies: sample, label, keep F-light, finish locally.
    Kkt,
    /// Run one doubly-exponential Borůvka step with list length `k`.
    Wave {
        /// Lightest-list length for this contraction step.
        k: usize,
    },
}

/// The next move of the MST loop given the current contracted size, the
/// steps taken so far, and the collection budget — exactly the stop rules
/// of [`heterogeneous_mst_with`].
pub fn next_move(
    m_cur: usize,
    n_cur: usize,
    steps: usize,
    budget_edges: usize,
    config: &MstConfig,
) -> MstMove {
    if m_cur * TAGGED_WORDS <= 2 * budget_edges {
        return MstMove::FinishGather;
    }
    if n_cur.saturating_mul(m_cur) <= (budget_edges * budget_edges) / 16 {
        return MstMove::Kkt;
    }
    if steps >= config.max_boruvka_steps {
        return MstMove::Kkt;
    }
    MstMove::Wave {
        k: (budget_edges / n_cur.max(1)).max(2),
    }
}

/// Applies a rename map to one machine's tagged edges, dropping edges that
/// became internal: the per-machine half of the relabel round (Claim 2).
/// Returns `(normalized current pair, original edge)` partials, which the
/// pair's hash-owner deduplicates keeping the lightest.
pub fn relabel_pairs(
    shard: &[TaggedEdge],
    rename: &std::collections::HashMap<VertexId, VertexId>,
) -> Vec<((u32, u32), Edge)> {
    let mut out = Vec::new();
    for te in shard {
        let u = *rename.get(&te.cur.u).unwrap_or(&te.cur.u);
        let v = *rename.get(&te.cur.v).unwrap_or(&te.cur.v);
        if u == v {
            continue; // became internal
        }
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        out.push(((a, b), te.orig));
    }
    out
}

/// Rebuilds a [`TaggedEdge`] from a deduplicated `(pair, original)` partial.
pub fn pair_to_tagged(pair: (u32, u32), orig: Edge) -> TaggedEdge {
    TaggedEdge {
        cur: Edge::new(pair.0, pair.1, orig.w),
        orig,
    }
}

/// The large machine's local finish for a tiny remainder: exact MSF over
/// the current edges, mapped back to the original edges they tag.
pub fn local_msf_finish(n: usize, rest: &[TaggedEdge]) -> Vec<Edge> {
    let local = mpc_graph::Graph::new(n, rest.iter().map(|te| te.cur));
    let msf = mpc_graph::mst::kruskal(&local);
    let orig_of = orig_lookup(rest);
    msf.edges.iter().map(orig_of).collect()
}

/// Runs the heterogeneous MST algorithm with default configuration.
///
/// `edges` must be the input edge list sharded over the small machines
/// (see [`common::distribute_edges`]).
///
/// # Errors
///
/// Returns [`MstError::Model`] on capacity violations (strict mode) and
/// [`MstError::SamplingFailed`] if every KKT repetition was unlucky.
pub fn heterogeneous_mst(
    cluster: &mut Cluster,
    n: usize,
    edges: ShardedVec<Edge>,
) -> Result<MstResult, MstError> {
    heterogeneous_mst_with(cluster, n, edges, &MstConfig::default())
}

/// [`heterogeneous_mst`] with explicit configuration.
///
/// # Errors
///
/// See [`heterogeneous_mst`].
pub fn heterogeneous_mst_with(
    cluster: &mut Cluster,
    n: usize,
    edges: ShardedVec<Edge>,
    config: &MstConfig,
) -> Result<MstResult, MstError> {
    let large = cluster
        .large()
        .expect("heterogeneous MST requires a large machine");
    let owners = common::owners(cluster);
    // The large machine devotes a quarter of its memory to edge collection.
    let budget_edges = collection_budget(cluster.capacity(large));

    // Lift input edges into tagged form (cur == orig initially).
    let mut cur: ShardedVec<TaggedEdge> = ShardedVec::from_shards(
        (0..edges.machines())
            .map(|mid| {
                edges
                    .shard(mid)
                    .iter()
                    .map(|&e| TaggedEdge::identity(e.normalized()))
                    .collect()
            })
            .collect(),
    );
    cur.account(cluster, "mst.edges")?;

    let mut m_cur = cur.total_len();
    let mut n_cur = n;
    let mut chosen: Vec<Edge> = Vec::new(); // MST edges (original ids), on large
    let mut stats = MstStats::default();

    // Part 1: doubly-exponential Borůvka until the KKT step fits. Every
    // decision goes through the shared [`next_move`] rule so the engine's
    // `MstProgram` coordinator replays the identical trajectory.
    loop {
        match next_move(m_cur, n_cur, stats.boruvka_steps, budget_edges, config) {
            // Tiny remainder: ship everything and finish locally.
            MstMove::FinishGather => {
                let rest = gather_to(cluster, "mst.final-gather", &cur, large)?;
                chosen.extend(local_msf_finish(n, &rest));
                stats.finished_by_direct_gather = true;
                break;
            }
            // KKT applicability: E[F-light] = n'/p with p = budget/(4m')
            // fits — or the step safety net tripped (same fallback).
            MstMove::Kkt => {
                let kkt_out = kkt::kkt_finish(
                    cluster,
                    n,
                    n_cur,
                    &cur,
                    budget_edges,
                    config.kkt_repetitions,
                )?;
                chosen.extend(kkt_out.mst_edges);
                stats.kkt_rep_used = Some(kkt_out.rep_used);
                stats.f_light_edges = kkt_out.f_light_count;
                break;
            }
            // One Borůvka step with k = budget/n' (squares step over step).
            MstMove::Wave { k } => {
                let step = boruvka_step(cluster, &owners, large, &cur, k)?;
                stats.boruvka_steps += 1;
                chosen.extend(step.chosen);

                // Relabel + dedup on the small machines (aggregation, Claim 2).
                cur = relabel_and_dedup(cluster, &owners, cur, &step.rename)?;
                cur.account(cluster, "mst.edges")?;
                m_cur = cur.total_len();
                n_cur = step.new_vertex_count.max(1);
                stats.contraction_trace.push((n_cur, m_cur));
                if m_cur == 0 {
                    stats.finished_by_direct_gather = true;
                    break;
                }
            }
        }
    }

    cluster.release("mst.edges");
    chosen.sort_by_key(Edge::weight_key);
    chosen.dedup();
    Ok(MstResult {
        forest: Forest::from_edges(chosen),
        stats,
    })
}

/// A closure mapping a *current* edge back to the original edge it tags.
fn orig_lookup(tagged: &[TaggedEdge]) -> impl Fn(&Edge) -> Edge + '_ {
    let map: std::collections::HashMap<(VertexId, VertexId), Edge> = tagged
        .iter()
        .map(|te| ((te.cur.u.min(te.cur.v), te.cur.u.max(te.cur.v)), te.orig))
        .collect();
    move |e: &Edge| map[&(e.u.min(e.v), e.u.max(e.v))]
}

struct BoruvkaStepOutcome {
    chosen: Vec<Edge>,
    rename: Vec<(VertexId, VertexId)>,
    new_vertex_count: usize,
}

/// One doubly-exponential Borůvka step: collect per-vertex lightest lists at
/// the large machine, contract locally, disseminate the rename map
/// (Claim 3, ≤4 rounds).
///
/// Two collection paths, chosen by the list length `k`:
/// * small `k` — hash-owner `top_t_per_key` (3 rounds);
/// * large `k` (a list would not fit a small machine) — the paper's actual
///   Claim 1 + Claim 4 mechanism: sort directed copies by (vertex, weight),
///   report per-machine run lengths to the large machine, which computes
///   exactly how many of each vertex's lightest edges sit on each machine
///   and queries them directly. No small machine ever holds more than its
///   sorted shard.
fn boruvka_step(
    cluster: &mut Cluster,
    owners: &[usize],
    large: usize,
    cur: &ShardedVec<TaggedEdge>,
    k: usize,
) -> Result<BoruvkaStepOutcome, ModelViolation> {
    // Directed copies: each edge appears under both endpoints.
    let mut items: ShardedVec<(VertexId, TaggedEdge)> = ShardedVec::new(cluster);
    for mid in 0..cur.machines() {
        let shard = items.shard_mut(mid);
        for te in cur.shard(mid) {
            shard.push((te.cur.u, *te));
            shard.push((te.cur.v, *te));
        }
    }
    items.account(cluster, "mst.directed")?;
    // Hash-owner collection concentrates up to ~√K·k items of one vertex on
    // its owner (collector stage); take the sorted path before that nears
    // the small-machine budget.
    let sqrt_k = (cluster.machines() as f64).sqrt().ceil() as usize;
    let owner_load_words = 5 * k * sqrt_k;
    let lists = if owner_load_words <= cluster.min_small_capacity() / 4 {
        top_t_per_key(
            cluster,
            "mst.collect-lightest",
            &items,
            owners,
            large,
            |_| k,
            |te| te.orig.weight_key(),
        )?
    } else {
        collect_lightest_sorted(cluster, owners, large, items.clone(), k)?
    };
    cluster.release("mst.directed");
    let lists_words: usize = lists.iter().map(|(_, v)| 1 + v.words()).sum();
    cluster.account("mst.large.lists", large, lists_words)?;

    let outcome = contract_lightest_lists(lists, k);
    cluster.release("mst.large.lists");
    cluster.account("mst.large.rename", large, 2 * outcome.rename.len())?;

    // Disseminate the rename map to machines holding affected endpoints.
    let requests = common::endpoint_requests(cluster, cur, |te| (te.cur.u, te.cur.v));
    let delivered = mpc_runtime::primitives::disseminate(
        cluster,
        "mst.rename",
        &outcome.rename,
        large,
        &requests,
        owners,
    )?;
    cluster.release("mst.large.rename");
    Ok(BoruvkaStepOutcome {
        chosen: outcome.chosen,
        rename: delivered_into_rename(cluster, delivered, outcome.new_vertex_count),
        new_vertex_count: outcome.new_vertex_count,
    })
}

/// The paper's Claim-1 + Claim-4 collection path for large `k`:
/// sort → run-length report → targeted queries → replies.
fn collect_lightest_sorted(
    cluster: &mut Cluster,
    owners: &[usize],
    large: usize,
    items: ShardedVec<(VertexId, TaggedEdge)>,
    k: usize,
) -> Result<Vec<(VertexId, Vec<TaggedEdge>)>, ModelViolation> {
    use std::collections::BTreeMap;
    // Claim 1: sort directed copies by (vertex, weight key); afterwards each
    // vertex's edges form a run over consecutive machines, lightest first.
    let sorted =
        mpc_runtime::primitives::sample_sort(cluster, "mst.arrange", items, owners, |(v, te)| {
            (*v, te.orig.weight_key())
        })?;
    // Claim 4: per-machine run lengths to the large machine. Sorted runs
    // mean at most (n' + K) pairs in total.
    let mut out = cluster.empty_outboxes::<(VertexId, u64)>();
    for &mid in owners {
        let mut counts: BTreeMap<VertexId, u64> = BTreeMap::new();
        for (v, _) in sorted.shard(mid) {
            *counts.entry(*v).or_default() += 1;
        }
        for (v, c) in counts {
            out[mid].push((large, (v, c)));
        }
    }
    let inboxes = cluster.exchange("mst.arrange.counts", out)?;
    // The large machine walks machines in ascending order (= sorted order)
    // and assigns each vertex's first-k quota across the run.
    let mut remaining: BTreeMap<VertexId, u64> = BTreeMap::new();
    let mut queries: Vec<Vec<(VertexId, u64)>> = vec![Vec::new(); cluster.machines()];
    let mut by_machine: BTreeMap<usize, Vec<(VertexId, u64)>> = BTreeMap::new();
    for (src, (v, c)) in &inboxes[large] {
        by_machine.entry(*src).or_default().push((*v, *c));
    }
    for (&mid, counts) in &by_machine {
        for &(v, c) in counts {
            let rem = remaining.entry(v).or_insert(k as u64);
            let take = c.min(*rem);
            if take > 0 {
                queries[mid].push((v, take));
                *rem -= take;
            }
        }
    }
    let mut out = cluster.empty_outboxes::<(VertexId, u64)>();
    for (mid, qs) in queries.iter().enumerate() {
        for &(v, take) in qs {
            out[large].push((mid, (v, take)));
        }
    }
    let inboxes = cluster.exchange("mst.arrange.queries", out)?;
    // Machines answer with the first `take` edges of each queried run.
    let mut out = cluster.empty_outboxes::<(VertexId, TaggedEdge)>();
    for (mid, inbox) in inboxes.into_iter().enumerate() {
        if inbox.is_empty() {
            continue;
        }
        let mut runs: BTreeMap<VertexId, Vec<TaggedEdge>> = BTreeMap::new();
        for (v, te) in sorted.shard(mid) {
            runs.entry(*v).or_default().push(*te); // already sorted
        }
        for (_src, (v, take)) in inbox {
            if let Some(run) = runs.get(&v) {
                for te in run.iter().take(take as usize) {
                    out[mid].push((large, (v, *te)));
                }
            }
        }
    }
    let inboxes = cluster.exchange("mst.arrange.replies", out)?;
    let mut lists: BTreeMap<VertexId, Vec<TaggedEdge>> = BTreeMap::new();
    for (_src, (v, te)) in inboxes[large].iter() {
        lists.entry(*v).or_default().push(*te);
    }
    Ok(lists
        .into_iter()
        .map(|(v, mut tes)| {
            tes.sort_by_key(|te| te.orig.weight_key());
            tes.truncate(k);
            (v, tes)
        })
        .collect())
}

/// Repackages the delivered rename pairs; kept as a helper so the relabel
/// step below can consume per-machine maps without re-requesting.
fn delivered_into_rename(
    _cluster: &Cluster,
    delivered: ShardedVec<(VertexId, VertexId)>,
    _new_count: usize,
) -> Vec<(VertexId, VertexId)> {
    // Flatten per-machine deliveries into a deduplicated list; the relabel
    // step rebuilds per-machine maps from the same delivery (kept simple —
    // each machine only ever uses keys it requested).
    let mut all: Vec<(VertexId, VertexId)> = delivered.iter().map(|(_, kv)| *kv).collect();
    all.sort_unstable();
    all.dedup();
    all
}

/// Applies the rename map on the small machines, drops internal edges, and
/// deduplicates parallel edges keeping the lightest (aggregation round).
fn relabel_and_dedup(
    cluster: &mut Cluster,
    owners: &[usize],
    cur: ShardedVec<TaggedEdge>,
    rename: &[(VertexId, VertexId)],
) -> Result<ShardedVec<TaggedEdge>, ModelViolation> {
    let map: std::collections::HashMap<VertexId, VertexId> = rename.iter().copied().collect();
    // Route (pair, original edge) — the current edge is reconstructed from
    // the pair key plus the original weight, keeping partials at 4 words.
    let mut relabeled: ShardedVec<((u32, u32), Edge)> = ShardedVec::new(cluster);
    for mid in 0..cur.machines() {
        *relabeled.shard_mut(mid) = relabel_pairs(cur.shard(mid), &map);
    }
    let deduped = aggregate_by_key(cluster, "mst.dedup", &relabeled, owners, |a, b| {
        if a.weight_key() <= b.weight_key() {
            *a
        } else {
            *b
        }
    })?;
    Ok(ShardedVec::from_shards(
        (0..deduped.machines())
            .map(|mid| {
                deduped
                    .shard(mid)
                    .iter()
                    .map(|&((a, b), orig)| pair_to_tagged((a, b), orig))
                    .collect()
            })
            .collect(),
    ))
}

/// Reports the total current edge count to the large machine
/// (diagnostic; `O(log_F K)` rounds). Exposed for the benches.
pub fn count_edges(
    cluster: &mut Cluster,
    edges: &ShardedVec<TaggedEdge>,
) -> Result<u64, ModelViolation> {
    let participants: Vec<usize> = (0..cluster.machines()).collect();
    let values: Vec<u64> = (0..cluster.machines())
        .map(|mid| edges.shard(mid).len() as u64)
        .collect();
    let dst = cluster.large().unwrap_or(0);
    sum_to(cluster, "mst.count", &participants, values, dst)
}

/// Convenience for tests: checks that `result` is a minimum spanning forest
/// of `g` (valid spanning forest + weight equal to Kruskal's).
pub fn is_minimum_spanning_forest(g: &mpc_graph::Graph, result: &Forest) -> bool {
    mpc_graph::is_spanning_forest(g, &result.edges)
        && result.total_weight == mpc_graph::mst::kruskal(g).total_weight
}

#[allow(unused)]
fn weight_key_of(te: &TaggedEdge) -> WeightKey {
    te.orig.weight_key()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_graph::generators;
    use mpc_runtime::{ClusterConfig, Enforcement, Topology};

    fn run_mst(g: &mpc_graph::Graph, seed: u64) -> (MstResult, u64) {
        let mut cluster = Cluster::new(
            ClusterConfig::new(g.n(), g.m().max(1))
                .seed(seed)
                .enforcement(Enforcement::Strict),
        );
        let input = common::distribute_edges(&cluster, g);
        let r = heterogeneous_mst(&mut cluster, g.n(), input).unwrap();
        (r, cluster.rounds())
    }

    #[test]
    fn mst_matches_kruskal_on_random_graphs() {
        for seed in 0..5 {
            let g = generators::gnm(120, 900, seed).with_random_weights(100_000, seed);
            let (r, _) = run_mst(&g, seed);
            assert!(is_minimum_spanning_forest(&g, &r.forest), "seed {seed}");
        }
    }

    #[test]
    fn mst_on_disconnected_graphs_is_msf() {
        let g = generators::random_forest(100, 4, 3).with_random_weights(50, 3);
        let (r, _) = run_mst(&g, 1);
        assert_eq!(r.forest.len(), 96);
        assert!(is_minimum_spanning_forest(&g, &r.forest));
    }

    #[test]
    fn dense_inputs_trigger_boruvka_steps() {
        // Density high enough that the contraction phase must run.
        let g = generators::gnm(256, 8000, 2).with_random_weights(1 << 20, 2);
        let mut cluster = Cluster::new(
            ClusterConfig::new(g.n(), g.m())
                .topology(Topology::Heterogeneous {
                    gamma: 0.5,
                    large_exponent: 1.0,
                })
                .seed(4),
        );
        let input = common::distribute_edges(&cluster, &g);
        let r = heterogeneous_mst(&mut cluster, g.n(), input).unwrap();
        assert!(is_minimum_spanning_forest(&g, &r.forest));
        assert!(
            r.stats.boruvka_steps >= 1,
            "expected contraction steps, stats = {:?}",
            r.stats
        );
    }

    #[test]
    fn unique_weights_reproduce_kruskal_edge_set_exactly() {
        // With unique weights the MSF is unique, so edge sets must agree.
        let mut g = generators::gnm(80, 400, 7);
        let edges: Vec<Edge> = g
            .edges()
            .iter()
            .enumerate()
            .map(|(i, e)| Edge::new(e.u, e.v, 1000 + i as u64))
            .collect();
        g = mpc_graph::Graph::new(80, edges);
        let (r, _) = run_mst(&g, 5);
        let want = mpc_graph::mst::kruskal(&g);
        assert_eq!(r.forest.keys(), want.keys());
    }

    #[test]
    fn empty_and_tiny_graphs() {
        let g = mpc_graph::Graph::empty(10);
        let mut cluster = Cluster::new(ClusterConfig::new(10, 1));
        let input = common::distribute_edges(&cluster, &g);
        let r = heterogeneous_mst(&mut cluster, 10, input).unwrap();
        assert!(r.forest.is_empty());

        let g = generators::path(2).with_random_weights(5, 1);
        let (r, _) = run_mst(&g, 2);
        assert_eq!(r.forest.len(), 1);
    }
}
