//! The large machine's local contraction step (§3, "doubly-exponential
//! Borůvka"), in the *saturation-safe* variant of Lotker et al. \[45\].
//!
//! Input: for each current vertex `v`, its `min(k, deg(v))` lightest
//! outgoing edges, sorted ascending. The step repeatedly contracts every
//! cluster along its **provably minimum outgoing edge** (cut rule ⇒ an MST
//! edge):
//!
//! * a cluster's candidate is the lightest unused, non-internal edge over
//!   its constituents' lists;
//! * a constituent whose (possibly truncated) list is used up *may* have
//!   lighter edges we never saw, so its cluster turns **passive** and stops
//!   proposing — but a passive cluster already absorbed `k+1` distinct
//!   phase-start vertices (all `k` list edges became internal), so the
//!   phase still shrinks the vertex count by a factor `≥ k`, which is what
//!   the doubly-exponential schedule needs;
//! * clusters whose lists were complete (`deg(v) < k`) and are exhausted
//!   simply have no outgoing edges left (their component is done).
//!
//! Every contracted edge is a true minimum outgoing edge of some cluster at
//! the moment of contraction, so the output is exact — no edge ever needs
//! to be revoked.

use mpc_graph::{DisjointSets, Edge, VertexId, WeightKey};
use mpc_runtime::payload::TaggedEdge;
use std::collections::HashMap;

/// Result of one local contraction step.
#[derive(Clone, Debug)]
pub struct ContractionOutcome {
    /// Original-graph edges along which clusters merged (MST edges).
    pub chosen: Vec<Edge>,
    /// Rename pairs `(old current-id, new current-id)`; new ids are the
    /// minimum old id of the merged cluster.
    pub rename: Vec<(VertexId, VertexId)>,
    /// Number of clusters after the step (vertices of the next graph that
    /// still carry edges or were merged).
    pub new_vertex_count: usize,
}

struct VertexLists {
    edges: Vec<TaggedEdge>, // sorted ascending by orig weight key
    cursor: usize,
    complete: bool, // list holds ALL incident edges (deg < k)
}

/// Contracts along lightest-edge lists; see the module docs.
///
/// `lists[v]` must be sorted ascending by original weight key and truncated
/// to at most `k` entries ([`top_t_per_key`](mpc_runtime::primitives::top_t_per_key)
/// produces exactly this shape).
pub fn contract_lightest_lists(
    lists: Vec<(VertexId, Vec<TaggedEdge>)>,
    k: usize,
) -> ContractionOutcome {
    // Dense-index the participating vertices.
    let mut index: HashMap<VertexId, usize> = HashMap::new();
    let mut ids: Vec<VertexId> = Vec::new();
    let intern = |v: VertexId, ids: &mut Vec<VertexId>, index: &mut HashMap<VertexId, usize>| {
        *index.entry(v).or_insert_with(|| {
            ids.push(v);
            ids.len() - 1
        })
    };
    for (v, es) in &lists {
        intern(*v, &mut ids, &mut index);
        for te in es {
            intern(te.cur.u, &mut ids, &mut index);
            intern(te.cur.v, &mut ids, &mut index);
        }
    }
    let nv = ids.len();
    let mut vls: Vec<VertexLists> = (0..nv)
        .map(|_| VertexLists {
            edges: Vec::new(),
            cursor: 0,
            complete: true,
        })
        .collect();
    for (v, es) in lists {
        let i = index[&v];
        vls[i] = VertexLists {
            complete: es.len() < k,
            edges: es,
            cursor: 0,
        };
    }

    let mut dsu = DisjointSets::new(nv);
    // members[root] = dense vertices currently merged into root.
    let mut members: Vec<Vec<u32>> = (0..nv as u32).map(|i| vec![i]).collect();
    let mut passive = vec![false; nv];
    let mut chosen: Vec<Edge> = Vec::new();

    loop {
        // Collect one proposal per active cluster.
        let mut roots: Vec<u32> = (0..nv as u32).filter(|&i| dsu.find(i) == i).collect();
        roots.sort_unstable();
        let mut proposals: Vec<(u32, TaggedEdge, WeightKey)> = Vec::new();
        for &root in &roots {
            if passive[root as usize] {
                continue;
            }
            let mut best: Option<(TaggedEdge, WeightKey)> = None;
            let mut became_passive = false;
            let member_list = std::mem::take(&mut members[root as usize]);
            for &c in &member_list {
                let vl = &mut vls[c as usize];
                // Skip internal edges permanently.
                while vl.cursor < vl.edges.len() {
                    let te = vl.edges[vl.cursor];
                    let iu = index[&te.cur.u] as u32;
                    let iv = index[&te.cur.v] as u32;
                    if dsu.find(iu) == dsu.find(iv) {
                        vl.cursor += 1;
                    } else {
                        break;
                    }
                }
                if vl.cursor == vl.edges.len() {
                    if !vl.complete {
                        became_passive = true;
                        break;
                    }
                    continue; // genuinely no outgoing edges from c
                }
                let te = vl.edges[vl.cursor];
                let key = te.orig.weight_key();
                if best.as_ref().is_none_or(|(_, bk)| key < *bk) {
                    best = Some((te, key));
                }
            }
            members[root as usize] = member_list;
            if became_passive {
                passive[root as usize] = true;
            } else if let Some((te, key)) = best {
                proposals.push((root, te, key));
            }
        }
        if proposals.is_empty() {
            break;
        }
        // Contract along all proposals (each is a minimum outgoing edge of
        // its cluster ⇒ cut rule ⇒ MST edge; symmetric proposals dedup via
        // the union check).
        for (_root, te, _key) in proposals {
            let iu = index[&te.cur.u] as u32;
            let iv = index[&te.cur.v] as u32;
            let (ru, rv) = (dsu.find(iu), dsu.find(iv));
            if ru == rv {
                continue;
            }
            let was_passive = passive[ru as usize] || passive[rv as usize];
            let moved = std::mem::take(&mut members[rv as usize]);
            let moved_u = std::mem::take(&mut members[ru as usize]);
            dsu.union(ru, rv);
            let nr = dsu.find(ru) as usize;
            members[nr] = moved_u;
            members[nr].extend(moved);
            passive[nr] = was_passive;
            chosen.push(te.orig);
        }
    }

    // Rename: every dense vertex maps to the min original id of its cluster.
    let mut min_id: Vec<VertexId> = vec![VertexId::MAX; nv];
    for i in 0..nv as u32 {
        let r = dsu.find(i) as usize;
        min_id[r] = min_id[r].min(ids[i as usize]);
    }
    let rename: Vec<(VertexId, VertexId)> = (0..nv as u32)
        .map(|i| (ids[i as usize], min_id[dsu.find(i) as usize]))
        .collect();
    ContractionOutcome {
        chosen,
        rename,
        new_vertex_count: dsu.component_count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn te(u: VertexId, v: VertexId, w: u64) -> TaggedEdge {
        TaggedEdge::identity(Edge::new(u, v, w).normalized())
    }

    /// Builds truncated lightest-lists for an edge set, mimicking top_t.
    fn lists_of(n: VertexId, edges: &[TaggedEdge], k: usize) -> Vec<(VertexId, Vec<TaggedEdge>)> {
        let mut out = Vec::new();
        for v in 0..n {
            let mut mine: Vec<TaggedEdge> = edges
                .iter()
                .filter(|t| t.cur.u == v || t.cur.v == v)
                .copied()
                .collect();
            mine.sort_by_key(|t| t.orig.weight_key());
            mine.truncate(k);
            if !mine.is_empty() {
                out.push((v, mine));
            }
        }
        out
    }

    #[test]
    fn contracts_path_fully_with_large_k() {
        let edges = [te(0, 1, 5), te(1, 2, 3), te(2, 3, 9)];
        let out = contract_lightest_lists(lists_of(4, &edges, 10), 10);
        assert_eq!(out.new_vertex_count, 1);
        assert_eq!(out.chosen.len(), 3);
        // Everyone renamed to 0.
        assert!(out.rename.iter().all(|&(_, new)| new == 0));
    }

    #[test]
    fn all_chosen_edges_are_mst_edges() {
        use mpc_graph::generators;
        for seed in 0..6 {
            let g = generators::gnm(40, 200, seed).with_random_weights(10_000, seed + 50);
            let tagged: Vec<TaggedEdge> =
                g.edges().iter().map(|&e| TaggedEdge::identity(e)).collect();
            for k in [2usize, 3, 8] {
                let out = contract_lightest_lists(lists_of(40, &tagged, k), k);
                let mst = mpc_graph::mst::kruskal(&g);
                let mst_keys: std::collections::HashSet<_> =
                    mst.edges.iter().map(Edge::weight_key).collect();
                for e in &out.chosen {
                    assert!(
                        mst_keys.contains(&e.weight_key()),
                        "seed {seed} k {k}: contracted non-MST edge {e:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn progress_shrinks_vertex_count_by_factor_k() {
        use mpc_graph::generators;
        let g = generators::gnm(100, 2000, 1).with_random_weights(1 << 20, 9);
        let tagged: Vec<TaggedEdge> = g.edges().iter().map(|&e| TaggedEdge::identity(e)).collect();
        let k = 4;
        let out = contract_lightest_lists(lists_of(100, &tagged, k), k);
        // Connected-ish graph: every final cluster is passive (k+1 members)
        // or fully merged; either way count <= n/k + components.
        assert!(
            out.new_vertex_count <= 100 / k + 1,
            "only contracted to {} clusters",
            out.new_vertex_count
        );
    }

    #[test]
    fn disconnected_components_stay_separate() {
        let edges = [te(0, 1, 1), te(2, 3, 2)];
        let out = contract_lightest_lists(lists_of(4, &edges, 5), 5);
        assert_eq!(out.new_vertex_count, 2);
        assert_eq!(out.chosen.len(), 2);
    }

    #[test]
    fn empty_input() {
        let out = contract_lightest_lists(Vec::new(), 4);
        assert_eq!(out.new_vertex_count, 0);
        assert!(out.chosen.is_empty());
        assert!(out.rename.is_empty());
    }
}
