//! The KKT sampling finish (§3): sample, build the sampled MSF on the large
//! machine, disseminate max-edge labels, keep F-light edges, finish locally.

use crate::common;
use mpc_graph::{Edge, Graph, VertexId};
use mpc_labeling::{Label, MaxEdgeLabeling};
use mpc_runtime::payload::TaggedEdge;
use mpc_runtime::primitives::{disseminate, gather_to, reduce_to};
use mpc_runtime::{Cluster, Payload, ShardedVec};
use rand::Rng;
use std::collections::HashMap;

use super::MstError;

/// Output of the KKT finish.
pub struct KktOutcome {
    /// MST edges (original-graph ids) of the remaining contracted graph.
    pub mst_edges: Vec<Edge>,
    /// Which sampling repetition succeeded.
    pub rep_used: usize,
    /// F-light edges shipped to the large machine.
    pub f_light_count: usize,
}

/// The KKT sampling probability `p = budget/(4m')`, capped at 1 — shared
/// with the engine's `MstProgram` so both draw the same per-edge coins.
pub fn sample_probability(budget_edges: usize, m_cur: usize) -> f64 {
    ((budget_edges as f64) / (4.0 * m_cur.max(1) as f64)).min(1.0)
}

/// Large-local step: MSF `F` of the sampled subgraph (current ids) plus its
/// max-edge labeling.
pub fn span_sample(n: usize, sampled: &[TaggedEdge]) -> (mpc_graph::mst::Forest, MaxEdgeLabeling) {
    let sample_graph = Graph::new(n, sampled.iter().map(|te| te.cur));
    let msf = mpc_graph::mst::kruskal(&sample_graph);
    let forest_graph = Graph::new(n, msf.edges.iter().copied());
    let labeling = MaxEdgeLabeling::build(&forest_graph).expect("MSF is a forest");
    (msf, labeling)
}

/// Large-local finish: MST over the pooled `sampled ∪ F-light` edges in
/// current ids, mapped back to the original edges they tag.
pub fn finish_pool(n: usize, pool: &[TaggedEdge]) -> Vec<Edge> {
    let mut orig_of: HashMap<(VertexId, VertexId), Edge> = HashMap::new();
    for te in pool {
        let k = (te.cur.u.min(te.cur.v), te.cur.u.max(te.cur.v));
        orig_of.entry(k).or_insert(te.orig);
    }
    let final_graph = Graph::new(n, pool.iter().map(|te| te.cur));
    let msf_final = mpc_graph::mst::kruskal(&final_graph);
    msf_final
        .edges
        .iter()
        .map(|e| orig_of[&(e.u.min(e.v), e.u.max(e.v))])
        .collect()
}

/// Runs the sampling + F-light finish on the current contracted edges.
///
/// `n` is the *original* vertex-universe size (labels are indexed by
/// original ids); `n_cur` the current contracted vertex count (drives the
/// sampling probability `p = budget/(4m')`, for which the expected F-light
/// count `n'/p` fits the large machine by the caller's stop rule).
pub fn kkt_finish(
    cluster: &mut Cluster,
    n: usize,
    n_cur: usize,
    cur: &ShardedVec<TaggedEdge>,
    budget_edges: usize,
    reps: usize,
) -> Result<KktOutcome, MstError> {
    let large = cluster.large().expect("KKT requires a large machine");
    let owners = common::owners(cluster);
    let m_cur = cur.total_len().max(1);
    let p = sample_probability(budget_edges, m_cur);
    let _ = n_cur;

    // Sample `reps` subgraphs in parallel on the small machines.
    let mut samples: Vec<ShardedVec<TaggedEdge>> = Vec::with_capacity(reps);
    for _ in 0..reps {
        let mut s: ShardedVec<TaggedEdge> = ShardedVec::new(cluster);
        for mid in 0..cur.machines() {
            let mut keep: Vec<TaggedEdge> = Vec::new();
            for te in cur.shard(mid) {
                if cluster.rng(mid).random_bool(p) {
                    keep.push(*te);
                }
            }
            *s.shard_mut(mid) = keep;
        }
        samples.push(s);
    }

    // Count all repetitions in one reduction (vector of counts).
    let participants: Vec<usize> = (0..cluster.machines()).collect();
    let values: Vec<Vec<u64>> = (0..cluster.machines())
        .map(|mid| samples.iter().map(|s| s.shard(mid).len() as u64).collect())
        .collect();
    let totals = reduce_to(
        cluster,
        "mst.kkt.count",
        &participants,
        values,
        large,
        |a, b| a.iter().zip(&b).map(|(x, y)| x + y).collect(),
    )
    .map_err(MstError::Model)?;

    // Pick the first repetition whose sample volume fits the budget.
    let rep = totals
        .iter()
        .position(|&c| (c as usize) <= budget_edges)
        .ok_or(MstError::SamplingFailed)?;

    let sampled = gather_to(cluster, "mst.kkt.gather-sample", &samples[rep], large)
        .map_err(MstError::Model)?;
    cluster
        .account("mst.kkt.sample", large, sampled.words())
        .map_err(MstError::Model)?;

    // Sampled MSF F on current-id edges (weights tie-broken by cur key;
    // the F-light test below uses the same key, so the order is consistent).
    let (_msf, labeling) = span_sample(n, &sampled);
    let label_words: usize = labeling.labels().iter().map(Payload::words).sum();
    cluster
        .account("mst.kkt.labels", large, label_words)
        .map_err(MstError::Model)?;

    // Disseminate labels for the endpoints the machines actually hold.
    let requests = common::endpoint_requests(cluster, cur, |te| (te.cur.u, te.cur.v));
    let mut needed: Vec<bool> = vec![false; n];
    for mid in 0..requests.machines() {
        for &v in requests.shard(mid) {
            needed[v as usize] = true;
        }
    }
    let pairs: Vec<(VertexId, Label)> = (0..n as VertexId)
        .filter(|&v| needed[v as usize])
        .map(|v| (v, labeling.label(v).clone()))
        .collect();
    let delivered = disseminate(cluster, "mst.kkt.labels", &pairs, large, &requests, &owners)
        .map_err(MstError::Model)?;

    // Small machines keep only F-light edges.
    let mut light: ShardedVec<TaggedEdge> = ShardedVec::new(cluster);
    for mid in 0..cur.machines() {
        let local: HashMap<VertexId, &Label> =
            delivered.shard(mid).iter().map(|(v, l)| (*v, l)).collect();
        let keep = light.shard_mut(mid);
        for te in cur.shard(mid) {
            let (Some(lu), Some(lv)) = (local.get(&te.cur.u), local.get(&te.cur.v)) else {
                // Endpoint absent from the forest universe: cannot happen
                // (labels cover all requested ids), but stay safe: light.
                keep.push(*te);
                continue;
            };
            if MaxEdgeLabeling::is_f_light(lu, lv, &te.cur) {
                keep.push(*te);
            }
        }
    }

    let lights =
        gather_to(cluster, "mst.kkt.gather-light", &light, large).map_err(MstError::Model)?;
    let f_light_count = lights.len();

    // Finish locally: MST over (sampled ∪ light) in current ids, then map
    // every chosen edge back to the original edge it tags.
    let mut pool: Vec<TaggedEdge> = sampled;
    pool.extend(lights.iter().copied());
    let mst_edges = finish_pool(n, &pool);

    cluster.release("mst.kkt.sample");
    cluster.release("mst.kkt.labels");
    Ok(KktOutcome {
        mst_edges,
        rep_used: rep,
        f_light_count,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_graph::generators;
    use mpc_runtime::{ClusterConfig, Enforcement};

    #[test]
    fn kkt_alone_computes_msf_of_moderate_graphs() {
        // Configure so the orchestrator would jump straight to KKT.
        for seed in 0..3 {
            let g = generators::gnm(200, 2000, seed).with_random_weights(1 << 20, seed);
            let mut cluster = Cluster::new(
                ClusterConfig::new(g.n(), g.m())
                    .seed(seed)
                    .enforcement(Enforcement::Strict),
            );
            let input = common::distribute_edges(&cluster, &g);
            let tagged = ShardedVec::from_shards(
                (0..input.machines())
                    .map(|mid| {
                        input
                            .shard(mid)
                            .iter()
                            .map(|&e| TaggedEdge::identity(e))
                            .collect()
                    })
                    .collect(),
            );
            let budget = cluster.capacity(cluster.large().unwrap()) / 16;
            let out = kkt_finish(&mut cluster, g.n(), g.n(), &tagged, budget, 5).unwrap();
            let forest = mpc_graph::mst::Forest::from_edges(out.mst_edges);
            assert!(
                super::super::is_minimum_spanning_forest(&g, &forest),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn f_light_volume_is_near_theory() {
        let g = generators::gnm(150, 3000, 9).with_random_weights(1 << 20, 9);
        let mut cluster = Cluster::new(ClusterConfig::new(g.n(), g.m()).seed(9));
        let input = common::distribute_edges(&cluster, &g);
        let tagged = ShardedVec::from_shards(
            (0..input.machines())
                .map(|mid| {
                    input
                        .shard(mid)
                        .iter()
                        .map(|&e| TaggedEdge::identity(e))
                        .collect()
                })
                .collect(),
        );
        let budget = 1200usize; // p = 1200/(4*3000) = 0.1 → E[light] ≤ n/p = 1500
        let out = kkt_finish(&mut cluster, g.n(), g.n(), &tagged, budget, 5).unwrap();
        // Markov-style sanity margin (4× expectation).
        assert!(
            out.f_light_count <= 4 * 150 * 10,
            "light = {}",
            out.f_light_count
        );
    }
}
