//! Maximal matching in the heterogeneous model (§5).
//!
//! [`heterogeneous_matching`] is the paper's three-phase algorithm
//! (Theorem 5.1), whose round complexity depends only on the **average**
//! degree `d = 2m/n` — not on `n` or on the maximum degree Δ:
//!
//! * **Phase 1** — a maximal matching `M₁` of the subgraph induced by the
//!   low-degree vertices (`deg ≤ d²`), computed on the small machines alone
//!   ([`peeling`]; substitution for Ghaffari–Uitto recorded in DESIGN.md).
//! * **Phase 2** — there are at most `n/d` high-degree vertices; the large
//!   machine collects `2d·log n` *random* incident edges of each
//!   (`O(n log n)` words total) and greedily extends to `M₂`. Lemma 5.4:
//!   w.h.p. at most `2n` edges remain with both endpoints unmatched.
//! * **Phase 3** — those edges are counted and shipped to the large
//!   machine, which completes the matching (`M₃`).
//!
//! [`filtering::filtering_matching`] is the `O(1/f)`-round algorithm for a
//! `n^(1+f)`-memory large machine (Theorem 5.5, after Lattanzi et al. \[44\]).

pub mod filtering;
pub mod peeling;

use crate::common;
use mpc_graph::matching::Matching;
use mpc_graph::{Edge, VertexId};
use mpc_runtime::primitives::{aggregate_by_key, gather_to, lookup, sum_to, top_t_per_key};
use mpc_runtime::{Cluster, ModelViolation, ShardedVec};
use rand::Rng;
use std::collections::{HashMap, HashSet};
use std::error::Error;
use std::fmt;

/// Errors of the matching algorithms.
#[derive(Clone, Debug)]
pub enum MatchingError {
    /// Capacity violation under strict enforcement.
    Model(ModelViolation),
    /// Phase 3 found more residual edges than the `O(n)` bound allows
    /// (probability `1/n` per Lemma 5.4; rerun with another seed).
    ResidualOverflow {
        /// Residual edges observed.
        found: u64,
        /// The abort threshold that was exceeded.
        threshold: u64,
    },
}

impl fmt::Display for MatchingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatchingError::Model(v) => write!(f, "model violation: {v}"),
            MatchingError::ResidualOverflow { found, threshold } => write!(
                f,
                "phase 3 found {found} residual edges, above the abort threshold {threshold}"
            ),
        }
    }
}

impl Error for MatchingError {}

impl From<ModelViolation> for MatchingError {
    fn from(v: ModelViolation) -> Self {
        MatchingError::Model(v)
    }
}

/// Statistics of a three-phase run.
#[derive(Clone, Debug, Default)]
pub struct MatchingStats {
    /// Average degree `d` used for the low/high split.
    pub average_degree: f64,
    /// The degree threshold `d²`.
    pub threshold: usize,
    /// Peeling iterations of Phase 1.
    pub phase1_iterations: usize,
    /// Matching edges found in Phase 1.
    pub m1: usize,
    /// Matching edges added by the large machine in Phase 2.
    pub m2: usize,
    /// Matching edges added in Phase 3.
    pub m3: usize,
    /// Number of high-degree vertices.
    pub high_vertices: usize,
    /// Residual edges shipped in Phase 3.
    pub residual_edges: u64,
}

/// Output of the matching algorithms.
#[derive(Clone, Debug)]
pub struct MatchingResult {
    /// The maximal matching.
    pub matching: Matching,
    /// Execution statistics.
    pub stats: MatchingStats,
}

/// The average degree `d` and the low/high threshold `d²` (Theorem 5.1) —
/// shared with the engine's `MatchingProgram` coordinator.
pub fn degree_split(n: usize, m: usize) -> (f64, usize) {
    let d = (2.0 * m as f64 / n.max(1) as f64).max(1.0);
    let threshold = ((d * d).ceil() as usize).max(1);
    (d, threshold)
}

/// Phase-2 per-vertex sample size `t ≈ 2d·log n`, capped by the large
/// machine's item budget spread over the high-degree vertices.
pub fn phase2_t(large_capacity: usize, n: usize, d: f64, high_count: usize) -> usize {
    let ln_n = (n.max(2) as f64).ln();
    let budget_items = large_capacity / 8;
    let t_target = (2.0 * d * ln_n).ceil() as usize;
    t_target.min(budget_items / high_count.max(1)).max(1)
}

/// The large machine's greedy Phase-2 extension over the per-vertex sampled
/// candidate lists (ascending vertex id, candidates ascending by rank).
/// Marks both endpoints of every chosen edge in `used`.
pub fn greedy_extend(
    sampled: &[(VertexId, Vec<(u64, Edge)>)],
    used: &mut HashSet<VertexId>,
) -> Vec<Edge> {
    let mut m2_edges: Vec<Edge> = Vec::new();
    for (u, candidates) in sampled {
        if used.contains(u) {
            continue;
        }
        if let Some((_r, e)) = candidates
            .iter()
            .find(|(_r, e)| !used.contains(&e.other(*u)))
        {
            used.insert(*u);
            used.insert(e.other(*u));
            m2_edges.push(*e);
        }
    }
    m2_edges
}

/// Runs the three-phase maximal-matching algorithm (Theorem 5.1).
///
/// # Errors
///
/// [`MatchingError::Model`] on capacity violations;
/// [`MatchingError::ResidualOverflow`] in the unlikely event the Phase-3
/// residual exceeds its `O(n)` bound.
pub fn heterogeneous_matching(
    cluster: &mut Cluster,
    n: usize,
    edges: &ShardedVec<Edge>,
) -> Result<MatchingResult, MatchingError> {
    let large = cluster.large().expect("matching requires a large machine");
    let owners = common::owners(cluster);
    let m = edges.total_len();
    let mut stats = MatchingStats::default();
    if m == 0 {
        return Ok(MatchingResult {
            matching: Matching::new(),
            stats,
        });
    }
    let (d, threshold) = degree_split(n, m);
    stats.average_degree = d;
    stats.threshold = threshold;

    // Degrees at owners (aggregation), mirrored to the large machine.
    let mut deg_items: ShardedVec<(VertexId, u32)> = ShardedVec::new(cluster);
    for mid in 0..edges.machines() {
        let shard = deg_items.shard_mut(mid);
        for e in edges.shard(mid) {
            shard.push((e.u, 1));
            shard.push((e.v, 1));
        }
    }
    let deg_at_owner =
        aggregate_by_key(cluster, "match.degree", &deg_items, &owners, |a, b| a + b)?;
    let deg_pairs = gather_to(cluster, "match.degree-up", &deg_at_owner, large)?;
    let deg: HashMap<VertexId, u32> = deg_pairs.iter().copied().collect();
    let high: HashSet<VertexId> = deg
        .iter()
        .filter(|(_, &dv)| dv as usize > threshold)
        .map(|(&v, _)| v)
        .collect();
    stats.high_vertices = high.len();

    // Edge classification on the small machines needs endpoint degrees.
    let requests = common::endpoint_requests(cluster, edges, |e| (e.u, e.v));
    let local_deg = lookup(cluster, "match.deg-look", &deg_at_owner, &requests, &owners)?;
    let mut low_edges: ShardedVec<Edge> = ShardedVec::new(cluster);
    for mid in 0..edges.machines() {
        let dl: HashMap<VertexId, u32> = local_deg.shard(mid).iter().copied().collect();
        let shard = low_edges.shard_mut(mid);
        for e in edges.shard(mid) {
            if dl[&e.u] as usize <= threshold && dl[&e.v] as usize <= threshold {
                shard.push(*e);
            }
        }
    }

    // Phase 1: maximal matching of the low-degree subgraph.
    let empty: ShardedVec<(VertexId, u32)> = ShardedVec::new(cluster);
    let p1 = peeling::peeling_matching(cluster, &low_edges, &empty, "match.p1")?;
    stats.phase1_iterations = p1.iterations;
    let m1_edges = gather_to(cluster, "match.m1-up", &p1.matching, large)?;
    stats.m1 = m1_edges.len();

    // Phase 2: the large machine samples ~2d·log n random incident edges of
    // every high-degree vertex (random ranks + top-t selection, exactly the
    // paper's rank trick) and greedily extends the matching.
    let t = phase2_t(cluster.capacity(large), n, d, high.len());
    let mut high_items: ShardedVec<(VertexId, (u64, Edge))> = ShardedVec::new(cluster);
    for mid in 0..edges.machines() {
        let shard = high_items.shard_mut(mid);
        for e in edges.shard(mid) {
            for v in [e.u, e.v] {
                if high.contains(&v) {
                    let rank = cluster.rng(mid).random::<u64>();
                    shard.push((v, (rank, *e)));
                }
            }
        }
    }
    let sampled = top_t_per_key(
        cluster,
        "match.p2-sample",
        &high_items,
        &owners,
        large,
        |_| t,
        |re| re.0,
    )?;
    // Greedy M2 over the sampled edges, seeded with M1's matched vertices.
    let mut used: HashSet<VertexId> = HashSet::new();
    for e in &m1_edges {
        used.insert(e.u);
        used.insert(e.v);
    }
    let m2_edges = greedy_extend(&sampled, &mut used);
    stats.m2 = m2_edges.len();

    // Phase 3: disseminate matched flags, count and collect the residual.
    let matched_pairs: Vec<(VertexId, u32)> = {
        let mut v: Vec<VertexId> = used.iter().copied().collect();
        v.sort_unstable();
        v.into_iter().map(|x| (x, 1)).collect()
    };
    let delivered = mpc_runtime::primitives::disseminate(
        cluster,
        "match.flags",
        &matched_pairs,
        large,
        &requests,
        &owners,
    )?;
    let mut residual: ShardedVec<Edge> = ShardedVec::new(cluster);
    for mid in 0..edges.machines() {
        let flag: HashSet<VertexId> = delivered.shard(mid).iter().map(|&(v, _)| v).collect();
        let shard = residual.shard_mut(mid);
        for e in edges.shard(mid) {
            if !flag.contains(&e.u) && !flag.contains(&e.v) {
                shard.push(*e);
            }
        }
    }
    let participants: Vec<usize> = (0..cluster.machines()).collect();
    let counts: Vec<u64> = (0..cluster.machines())
        .map(|mid| residual.shard(mid).len() as u64)
        .collect();
    let residual_count = sum_to(
        cluster,
        "match.residual-count",
        &participants,
        counts,
        large,
    )?;
    stats.residual_edges = residual_count;
    // The paper aborts above 2n; we use the volume the large machine can
    // actually accept — the same O(n) bound with its real constant.
    let abort_threshold = (cluster.capacity(large) / 4) as u64;
    if residual_count > abort_threshold {
        return Err(MatchingError::ResidualOverflow {
            found: residual_count,
            threshold: abort_threshold,
        });
    }
    let residual_edges = gather_to(cluster, "match.residual-up", &residual, large)?;
    let pre: Vec<VertexId> = used.iter().copied().collect();
    let m3 = mpc_graph::matching::greedy_matching_over(n, residual_edges.iter().copied(), &pre);
    stats.m3 = m3.len();

    let mut all = m1_edges;
    all.extend(m2_edges);
    all.extend(m3.edges.iter().copied());
    Ok(MatchingResult {
        matching: Matching { edges: all },
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_graph::generators;
    use mpc_graph::matching::is_maximal_matching;
    use mpc_runtime::ClusterConfig;

    fn run(g: &mpc_graph::Graph, seed: u64) -> (MatchingResult, u64) {
        let mut cluster = Cluster::new(ClusterConfig::new(g.n(), g.m().max(1)).seed(seed));
        let input = common::distribute_edges(&cluster, g);
        let r = heterogeneous_matching(&mut cluster, g.n(), &input).unwrap();
        (r, cluster.rounds())
    }

    #[test]
    fn matching_is_maximal_on_random_graphs() {
        for seed in 0..4 {
            let g = generators::gnm(120, 700, seed);
            let (r, _) = run(&g, seed);
            assert!(is_maximal_matching(&g, &r.matching), "seed {seed}");
        }
    }

    #[test]
    fn skewed_graphs_exercise_the_high_degree_path() {
        // Power-law graph: a few very high degree vertices, low average.
        let g = generators::chung_lu(300, 1800, 2.3, 5);
        let (r, _) = run(&g, 5);
        assert!(is_maximal_matching(&g, &r.matching));
        assert!(
            r.stats.high_vertices > 0,
            "expected high-degree vertices; stats = {:?}",
            r.stats
        );
    }

    #[test]
    fn star_graph_is_fully_high_degree_at_center() {
        let g = generators::star(200);
        let (r, _) = run(&g, 2);
        assert!(is_maximal_matching(&g, &r.matching));
        assert_eq!(r.matching.len(), 1); // a star admits one matched edge
    }

    #[test]
    fn empty_graph() {
        let g = mpc_graph::Graph::empty(10);
        let mut cluster = Cluster::new(ClusterConfig::new(10, 1));
        let input = common::distribute_edges(&cluster, &g);
        let r = heterogeneous_matching(&mut cluster, 10, &input).unwrap();
        assert!(r.matching.is_empty());
    }

    #[test]
    fn stats_add_up() {
        let g = generators::gnm(150, 2000, 8);
        let (r, _) = run(&g, 8);
        assert_eq!(r.matching.len(), r.stats.m1 + r.stats.m2 + r.stats.m3);
        assert!(r.stats.average_degree > 1.0);
    }
}
