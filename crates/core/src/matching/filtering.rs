//! The filtering maximal-matching algorithm (Theorem 5.5, after Lattanzi,
//! Moseley, Suri & Vassilvitskii \[44\]).
//!
//! With a large machine of memory `Õ(n^(1+f))`, sample each edge with
//! probability `p = n^(−f)` recursively until the graph fits; match the
//! bottom level on the large machine; then unwind: at each level, the edges
//! whose endpoints are both unmatched number `O(n/p) = O(n^(1+f))` w.h.p.
//! (\[44\] Lemma 3.1), so the large machine can absorb them and extend the
//! matching. `O(1/f)` levels ⇒ `O(1/f)` rounds — experiment E8 sweeps `f`.
//!
//! Callers should configure the cluster topology with
//! `large_exponent = 1 + f` so capacities match the algorithm's premise.

use crate::common;
use mpc_graph::matching::Matching;
use mpc_graph::{Edge, VertexId};
use mpc_runtime::primitives::{gather_to, sum_to};
use mpc_runtime::{Cluster, ModelViolation, ShardedVec};
use rand::Rng;
use std::collections::HashSet;

/// Statistics of a filtering run.
#[derive(Clone, Debug, Default)]
pub struct FilteringStats {
    /// Recursion levels (sampling depth).
    pub levels: usize,
    /// Edge counts per level, top (input) to bottom.
    pub level_sizes: Vec<usize>,
    /// Residual edges absorbed while unwinding each level.
    pub residuals: Vec<usize>,
}

/// Runs filtering matching with sampling probability `p = n^(−f)`.
///
/// # Errors
///
/// Propagates capacity violations — in particular if `f` overestimates the
/// large machine's actual memory.
pub fn filtering_matching(
    cluster: &mut Cluster,
    n: usize,
    edges: &ShardedVec<Edge>,
    f: f64,
) -> Result<(Matching, FilteringStats), ModelViolation> {
    assert!(f > 0.0, "filtering requires a superlinear exponent f > 0");
    let large = cluster.large().expect("filtering requires a large machine");
    let owners = common::owners(cluster);
    let p = (n.max(2) as f64).powf(-f);
    let budget_edges = cluster.capacity(large) / 8; // words/2 edges, halved for slack

    // Build the sampling cascade G_0 ⊇ G_1 ⊇ … ⊇ G_L locally (free).
    let mut levels: Vec<ShardedVec<Edge>> = vec![edges.clone()];
    let mut stats = FilteringStats::default();
    stats.level_sizes.push(edges.total_len());
    while levels.last().unwrap().total_len() > budget_edges {
        let prev = levels.last().unwrap();
        let mut next: ShardedVec<Edge> = ShardedVec::new(cluster);
        for mid in 0..prev.machines() {
            let shard = next.shard_mut(mid);
            for e in prev.shard(mid) {
                if cluster.rng(mid).random_bool(p) {
                    shard.push(*e);
                }
            }
        }
        stats.level_sizes.push(next.total_len());
        levels.push(next);
        if levels.len() > 64 {
            break; // p pathologically close to 1; avoid infinite descent
        }
    }
    stats.levels = levels.len();

    // Bottom level: matched directly on the large machine.
    let bottom = gather_to(cluster, "filter.bottom", levels.last().unwrap(), large)?;
    cluster.account("filter.large", large, bottom.len() * 2)?;
    let mut matching = mpc_graph::matching::greedy_matching_over(n, bottom, &[]);

    // Unwind: at each level, ship matched flags down, absorb the residual.
    let participants: Vec<usize> = (0..cluster.machines()).collect();
    for level in (0..levels.len() - 1).rev() {
        let matched_pairs: Vec<(VertexId, u32)> = {
            let mut v: Vec<VertexId> = matching.edges.iter().flat_map(|e| [e.u, e.v]).collect();
            v.sort_unstable();
            v.dedup();
            v.into_iter().map(|x| (x, 1)).collect()
        };
        let requests = common::endpoint_requests(cluster, &levels[level], |e| (e.u, e.v));
        let delivered = mpc_runtime::primitives::disseminate(
            cluster,
            "filter.flags",
            &matched_pairs,
            large,
            &requests,
            &owners,
        )?;
        let mut residual: ShardedVec<Edge> = ShardedVec::new(cluster);
        for mid in 0..levels[level].machines() {
            let flag: HashSet<VertexId> = delivered.shard(mid).iter().map(|&(v, _)| v).collect();
            let shard = residual.shard_mut(mid);
            for e in levels[level].shard(mid) {
                if !flag.contains(&e.u) && !flag.contains(&e.v) {
                    shard.push(*e);
                }
            }
        }
        let counts: Vec<u64> = (0..cluster.machines())
            .map(|mid| residual.shard(mid).len() as u64)
            .collect();
        let total = sum_to(
            cluster,
            "filter.residual-count",
            &participants,
            counts,
            large,
        )?;
        stats.residuals.push(total as usize);
        let residual_edges = gather_to(cluster, "filter.residual", &residual, large)?;
        let pre: Vec<VertexId> = matching.edges.iter().flat_map(|e| [e.u, e.v]).collect();
        let extension = mpc_graph::matching::greedy_matching_over(n, residual_edges, &pre);
        matching.extend_disjoint(&extension);
    }
    cluster.release("filter.large");
    Ok((matching, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_graph::generators;
    use mpc_graph::matching::is_maximal_matching;
    use mpc_runtime::{ClusterConfig, Topology};

    fn run(g: &mpc_graph::Graph, f: f64, seed: u64) -> (Matching, FilteringStats, u64) {
        let mut cluster = Cluster::new(
            ClusterConfig::new(g.n(), g.m())
                .topology(Topology::Heterogeneous {
                    gamma: 0.66,
                    large_exponent: 1.0 + f,
                })
                .seed(seed),
        );
        let input = common::distribute_edges(&cluster, g);
        let (m, stats) = filtering_matching(&mut cluster, g.n(), &input, f).unwrap();
        (m, stats, cluster.rounds())
    }

    #[test]
    fn filtering_produces_maximal_matchings() {
        for seed in 0..3 {
            let g = generators::gnm(150, 3000, seed);
            let (m, _, _) = run(&g, 0.2, seed);
            assert!(is_maximal_matching(&g, &m), "seed {seed}");
        }
    }

    #[test]
    fn larger_f_means_fewer_levels() {
        let g = generators::gnm(128, 6000, 4);
        let (_, s_small, _) = run(&g, 0.1, 4);
        let (_, s_big, _) = run(&g, 0.5, 4);
        assert!(
            s_big.levels <= s_small.levels,
            "f=0.5 gave {} levels vs {} at f=0.1",
            s_big.levels,
            s_small.levels
        );
    }

    #[test]
    fn level_sizes_shrink_geometrically() {
        let g = generators::gnm(128, 6000, 7);
        let (_, stats, _) = run(&g, 0.3, 7);
        for w in stats.level_sizes.windows(2) {
            assert!(
                w[1] < w[0],
                "level sizes must shrink: {:?}",
                stats.level_sizes
            );
        }
    }
}
