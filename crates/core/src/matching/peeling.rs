//! Distributed random-rank greedy matching ("peeling").
//!
//! Every edge draws a uniform 64-bit rank; an edge joins the matching iff
//! its rank is the minimum among all edges sharing an endpoint; matched
//! vertices and their edges are then removed and the process repeats. This
//! is the classic parallel greedy matching — each iteration removes a
//! constant fraction of the surviving edges in expectation, so `O(log m)`
//! iterations suffice w.h.p. It runs entirely on the small machines (no
//! large machine needed), which is what Phase 1 of the paper's §5 algorithm
//! and the sublinear baseline require.
//!
//! **Substitution note (DESIGN.md §4):** the paper's Phase 1 invokes the
//! Ghaffari–Uitto subroutine (Lemma 5.2, `O(√log Δ · log log Δ)` rounds).
//! We substitute this peeling matcher (`O(log Δ)` iterations); the
//! heterogeneous content of Theorem 5.1 — rounds depending only on the
//! *average* degree `d` — is preserved because Phase 1 runs on the
//! `deg ≤ d²` subgraph either way.

use crate::common;
use mpc_graph::{Edge, VertexId};
use mpc_runtime::primitives::{aggregate_by_key, lookup, sum_to};
use mpc_runtime::{Cluster, ModelViolation, ShardedVec};
use rand::Rng;

/// Result of a peeling run.
#[derive(Debug)]
pub struct PeelingOutcome {
    /// The matching, sharded over the machines that discovered each edge.
    pub matching: ShardedVec<Edge>,
    /// Per-vertex matched flags, resident on the vertices' hash-owners.
    pub matched: ShardedVec<(VertexId, u32)>,
    /// Peeling iterations executed.
    pub iterations: usize,
}

/// Per-machine step: the minimum `(rank, edge)` per endpoint over one
/// machine's live edges — what each machine announces to the vertex owners.
pub fn local_vertex_minima(
    live: &[(u64, Edge)],
) -> std::collections::BTreeMap<VertexId, (u64, Edge)> {
    let mut best: std::collections::BTreeMap<VertexId, (u64, Edge)> =
        std::collections::BTreeMap::new();
    for &(rank, e) in live {
        for v in [e.u, e.v] {
            best.entry(v)
                .and_modify(|b| {
                    if rank < b.0 {
                        *b = (rank, e);
                    }
                })
                .or_insert((rank, e));
        }
    }
    best
}

/// Per-machine step: the live edges whose rank is the global minimum at
/// *both* endpoints (`minima` holds the delivered per-vertex global minima).
pub fn winning_edges(
    live: &[(u64, Edge)],
    minima: &std::collections::HashMap<VertexId, (u64, Edge)>,
) -> Vec<Edge> {
    let mut won: Vec<Edge> = Vec::new();
    for &(rank, e) in live {
        let wins = |v: VertexId| minima.get(&v).is_some_and(|&(r, _)| r == rank);
        if wins(e.u) && wins(e.v) {
            won.push(e);
        }
    }
    won
}

/// Runs peeling until no live edge remains (a maximal matching of the
/// input). `pre_matched` vertices are treated as already matched: their
/// edges are pruned before the first iteration.
///
/// # Errors
///
/// Propagates capacity violations in strict mode.
pub fn peeling_matching(
    cluster: &mut Cluster,
    edges: &ShardedVec<Edge>,
    pre_matched: &ShardedVec<(VertexId, u32)>,
    label: &str,
) -> Result<PeelingOutcome, ModelViolation> {
    let owners = common::owners(cluster);
    let participants: Vec<usize> = (0..cluster.machines()).collect();
    let coordinator = cluster.large().unwrap_or(owners[0]);

    // Live edges with their (one-time) random ranks.
    let mut live: ShardedVec<(u64, Edge)> = ShardedVec::new(cluster);
    for mid in 0..edges.machines() {
        let shard = live.shard_mut(mid);
        for e in edges.shard(mid) {
            let rank = cluster.rng(mid).random::<u64>();
            shard.push((rank, *e));
        }
    }
    // Matched flags start from the pre-matched set (owner-resident).
    let mut matched: ShardedVec<(VertexId, u32)> = pre_matched.clone();
    let mut matching: ShardedVec<Edge> = ShardedVec::new(cluster);
    let mut iterations = 0usize;

    // Prune edges incident to pre-matched vertices before the first round.
    if matched.total_len() > 0 {
        prune(
            cluster,
            &mut live,
            &matched,
            &owners,
            &format!("{label}.preprune"),
        )?;
    }

    loop {
        let counts: Vec<u64> = (0..cluster.machines())
            .map(|mid| live.shard(mid).len() as u64)
            .collect();
        let total = sum_to(
            cluster,
            &format!("{label}.count"),
            &participants,
            counts,
            coordinator,
        )?;
        if total == 0 {
            break;
        }
        iterations += 1;

        // Per-vertex minimum (rank, edge) via aggregation.
        let mut items: ShardedVec<(VertexId, (u64, Edge))> = ShardedVec::new(cluster);
        for mid in 0..live.machines() {
            let shard = items.shard_mut(mid);
            for &(rank, e) in live.shard(mid) {
                shard.push((e.u, (rank, e)));
                shard.push((e.v, (rank, e)));
            }
        }
        let minima = aggregate_by_key(
            cluster,
            &format!("{label}.minrank"),
            &items,
            &owners,
            |a, b| if a.0 <= b.0 { *a } else { *b },
        )?;

        // Each machine asks for the minima of its live endpoints and keeps
        // the edges that win on both sides.
        let requests = common::endpoint_requests(cluster, &live, |re| (re.1.u, re.1.v));
        let delivered = lookup(
            cluster,
            &format!("{label}.minrank-look"),
            &minima,
            &requests,
            &owners,
        )?;
        let mut newly_matched: ShardedVec<(VertexId, u32)> = ShardedVec::new(cluster);
        for mid in 0..live.machines() {
            let local: std::collections::HashMap<VertexId, (u64, Edge)> =
                delivered.shard(mid).iter().copied().collect();
            for e in winning_edges(live.shard(mid), &local) {
                matching.shard_mut(mid).push(e);
                newly_matched.shard_mut(mid).push((e.u, 1));
                newly_matched.shard_mut(mid).push((e.v, 1));
            }
        }
        // Fold the new matches into the owner-resident matched set.
        let merged = aggregate_by_key(
            cluster,
            &format!("{label}.matchedset"),
            &newly_matched,
            &owners,
            |a, b| *a | *b,
        )?;
        for mid in 0..cluster.machines() {
            let shard = matched.shard_mut(mid);
            shard.extend(merged.shard(mid).iter().copied());
            shard.sort_unstable();
            shard.dedup_by_key(|p| p.0);
        }
        prune(
            cluster,
            &mut live,
            &matched,
            &owners,
            &format!("{label}.prune"),
        )?;
    }
    Ok(PeelingOutcome {
        matching,
        matched,
        iterations,
    })
}

/// Removes live edges with a matched endpoint (one lookup round).
fn prune(
    cluster: &mut Cluster,
    live: &mut ShardedVec<(u64, Edge)>,
    matched: &ShardedVec<(VertexId, u32)>,
    owners: &[usize],
    label: &str,
) -> Result<(), ModelViolation> {
    let requests = common::endpoint_requests(cluster, live, |re| (re.1.u, re.1.v));
    let delivered = lookup(cluster, label, matched, &requests, owners)?;
    for mid in 0..live.machines() {
        let dead: std::collections::HashSet<VertexId> = delivered
            .shard(mid)
            .iter()
            .filter(|(_, flag)| *flag != 0)
            .map(|(v, _)| *v)
            .collect();
        live.shard_mut(mid)
            .retain(|(_, e)| !dead.contains(&e.u) && !dead.contains(&e.v));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_graph::generators;
    use mpc_graph::matching::{is_maximal_matching, Matching};
    use mpc_runtime::ClusterConfig;

    fn run(g: &mpc_graph::Graph, seed: u64) -> (PeelingOutcome, u64) {
        let mut cluster = Cluster::new(ClusterConfig::new(g.n(), g.m().max(1)).seed(seed));
        let input = common::distribute_edges(&cluster, g);
        let empty: ShardedVec<(VertexId, u32)> = ShardedVec::new(&cluster);
        let out = peeling_matching(&mut cluster, &input, &empty, "peel").unwrap();
        (out, cluster.rounds())
    }

    #[test]
    fn produces_maximal_matchings() {
        for seed in 0..4 {
            let g = generators::gnm(100, 600, seed);
            let (out, _) = run(&g, seed);
            let m = Matching {
                edges: out.matching.iter().map(|(_, e)| *e).collect(),
            };
            assert!(is_maximal_matching(&g, &m), "seed {seed}");
        }
    }

    #[test]
    fn iteration_count_is_logarithmic() {
        let g = generators::gnm(256, 4096, 1);
        let (out, _) = run(&g, 1);
        assert!(
            out.iterations <= 30,
            "expected O(log m) iterations, got {}",
            out.iterations
        );
        assert!(out.iterations >= 2);
    }

    #[test]
    fn respects_pre_matched_vertices() {
        let g = generators::complete(6);
        let mut cluster = Cluster::new(ClusterConfig::new(6, 15).seed(3));
        let input = common::distribute_edges(&cluster, &g);
        let owners = common::owners(&cluster);
        let mut pre: ShardedVec<(VertexId, u32)> = ShardedVec::new(&cluster);
        for v in [0u32, 1, 2, 3] {
            let mid = mpc_runtime::primitives::owner_of(&v, &owners);
            pre.shard_mut(mid).push((v, 1));
        }
        let out = peeling_matching(&mut cluster, &input, &pre, "peel").unwrap();
        let edges: Vec<Edge> = out.matching.iter().map(|(_, e)| *e).collect();
        assert_eq!(edges.len(), 1);
        assert!(edges[0].u >= 4 && edges[0].v >= 4);
    }

    #[test]
    fn empty_graph_is_immediate() {
        let g = mpc_graph::Graph::empty(5);
        let (out, _) = run(&g, 2);
        assert_eq!(out.iterations, 0);
        assert_eq!(out.matching.total_len(), 0);
    }
}
