//! Sequential Baswana–Sen spanners: the original Algorithm 1 and the
//! paper's *modified* Algorithm 2 (§4).
//!
//! The modified version replaces the neighborhood examined during
//! re-clustering with a subsampled one (`N_i(v)` over `G_i`, each edge kept
//! with probability `p`), which is what lets the large machine run the
//! clustering phase (lines 1–15) from `Õ(n)` sampled edges while the small
//! machines finish the removal edges (lines 16–18) against the full graph.
//! Lemma 4.3: the result is still a `(2k−1)`-spanner, of expected size
//! `O(k·n^(1+1/k)/p)`.
//!
//! Both variants are exposed sequentially here so that:
//!
//! * the distributed algorithm can run phase 1 on the large machine,
//! * the Figure-1 / Lemma-4.3 experiments can compare the two directly.

use mpc_graph::{Edge, Graph, VertexId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Per-level clustering trace of a Baswana–Sen run.
#[derive(Clone, Debug, Default)]
pub struct BsLevelStats {
    /// Vertices whose center survived into this level.
    pub retained: usize,
    /// Vertices re-clustered to a neighboring surviving cluster.
    pub reclustered: usize,
    /// Vertices removed at this level (they add edges in phase 2).
    pub removed: usize,
    /// Edges added during re-clustering at this level (phase-1 edges).
    pub recluster_edges: usize,
}

/// Output of phase 1 (lines 1–15): clusters and re-clustering edges.
#[derive(Clone, Debug)]
pub struct BsPhase1 {
    /// Edges added while re-clustering (already spanner edges).
    pub edges: Vec<Edge>,
    /// `centers[i][v]` = center of `v`'s level-`i` cluster (`None` = ⊥),
    /// for `i = 0..=k`.
    pub centers: Vec<Vec<Option<VertexId>>>,
    /// Level at which each vertex became unclustered
    /// (`c_{t-1}(v) ≠ ⊥, c_t(v) = ⊥`); `None` if never (only possible for
    /// vertices missing from the graph).
    pub removal_level: Vec<Option<usize>>,
    /// Per-level statistics (index 0 = BS level 1).
    pub stats: Vec<BsLevelStats>,
}

impl BsPhase1 {
    /// The center history `(c_0(v), …, c_{t−1}(v))` of `v`, where `t` is
    /// `v`'s removal level — exactly the label `l_v` the large machine
    /// disseminates in Algorithm 6.
    pub fn history(&self, v: VertexId) -> Vec<VertexId> {
        let t = self.removal_level[v as usize].unwrap_or(self.centers.len() - 1);
        (0..t)
            .map(|i| self.centers[i][v as usize].expect("clustered below removal level"))
            .collect()
    }
}

/// Runs phase 1 (lines 1–15 of Algorithm 2) over per-level edge sets.
///
/// `level_edges[i]` is the neighborhood graph used at BS level `i+1`
/// (`i = 0..k-1`): the full edge set for the original Algorithm 1, or the
/// sampled `G_i` for the modified version. Center sampling uses
/// probability `center_universe^{−1/k}` derived from `seed`
/// (`center_universe` is the true vertex count of the graph being spanned —
/// for clustering graphs `A_i` this is `|V_i|`, not the id-space size `n`).
pub fn phase1(
    n: usize,
    level_edges: &[Vec<Edge>],
    k: usize,
    seed: u64,
    center_universe: usize,
) -> BsPhase1 {
    assert!(k >= 1, "spanner parameter k must be >= 1");
    assert_eq!(
        level_edges.len(),
        k,
        "need one edge set per level (level k may be empty)"
    );
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xBA5A_0A5E);
    let p_center = (center_universe.max(2) as f64).powf(-1.0 / k as f64);

    let mut centers: Vec<Vec<Option<VertexId>>> = Vec::with_capacity(k + 1);
    centers.push((0..n as VertexId).map(Some).collect()); // c_0(v) = v
    let mut alive: Vec<bool> = vec![true; n]; // v ∈ C_i (is a live center)
    let mut removal_level: Vec<Option<usize>> = vec![None; n];
    let mut edges_out: Vec<Edge> = Vec::new();
    let mut stats: Vec<BsLevelStats> = Vec::new();

    for i in 1..=k {
        // Sample C_i from C_{i-1} (empty at level k).
        let next_alive: Vec<bool> = if i == k {
            vec![false; n]
        } else {
            alive
                .iter()
                .map(|&a| a && rng.random_bool(p_center))
                .collect()
        };
        // Adjacency of this level's (sampled) graph.
        let level_adj = if i < k {
            build_adj(n, &level_edges[i - 1])
        } else {
            Vec::new() // never consulted: C_k = ∅ re-clusters nobody
        };
        let prev = centers[i - 1].clone();
        let mut cur: Vec<Option<VertexId>> = vec![None; n];
        let mut st = BsLevelStats::default();
        for v in 0..n as VertexId {
            let Some(cv) = prev[v as usize] else { continue };
            if next_alive[cv as usize] {
                cur[v as usize] = Some(cv);
                st.retained += 1;
                continue;
            }
            // Try re-clustering through a (sampled) neighbor with a live
            // center; scan in neighbor order for determinism.
            let mut adopted: Option<(VertexId, VertexId, u64)> = None;
            if i < k {
                for &(u, w) in &level_adj[v as usize] {
                    if let Some(cu) = prev[u as usize] {
                        if next_alive[cu as usize] {
                            adopted = Some((cu, u, w));
                            break;
                        }
                    }
                }
            }
            match adopted {
                Some((c, u, w)) => {
                    cur[v as usize] = Some(c);
                    st.reclustered += 1;
                    st.recluster_edges += 1;
                    edges_out.push(Edge::new(u.min(v), u.max(v), w));
                }
                None => {
                    removal_level[v as usize] = Some(i);
                    st.removed += 1;
                }
            }
        }
        centers.push(cur);
        alive = next_alive;
        stats.push(st);
    }
    BsPhase1 {
        edges: edges_out,
        centers,
        removal_level,
        stats,
    }
}

fn build_adj(n: usize, edges: &[Edge]) -> Vec<Vec<(VertexId, u64)>> {
    let mut adj: Vec<Vec<(VertexId, u64)>> = vec![Vec::new(); n];
    for e in edges {
        adj[e.u as usize].push((e.v, e.w));
        adj[e.v as usize].push((e.u, e.w));
    }
    for a in &mut adj {
        a.sort_unstable();
    }
    adj
}

/// Phase 2 (lines 16–18): for every removed vertex `v`, add one edge to each
/// adjacent cluster of the level *before* removal, scanning the **full**
/// neighborhood. Returns the removal edges.
pub fn phase2(g: &Graph, p1: &BsPhase1) -> Vec<Edge> {
    let adj = g.adjacency();
    let mut out: Vec<Edge> = Vec::new();
    for v in 0..g.n() as VertexId {
        let Some(t) = p1.removal_level[v as usize] else {
            continue;
        };
        // One edge per adjacent level-(t-1) cluster: choose the minimum
        // (cluster, neighbor) representative.
        let mut best: std::collections::BTreeMap<VertexId, (VertexId, u64)> =
            std::collections::BTreeMap::new();
        for &(u, w) in adj.neighbors(v) {
            if let Some(cu) = p1.centers[t - 1][u as usize] {
                // Skip v's own previous cluster (it no longer helps).
                if p1.centers[t - 1][v as usize] == Some(cu) {
                    continue;
                }
                best.entry(cu).or_insert((u, w));
            }
        }
        for (_c, (u, w)) in best {
            out.push(Edge::new(v.min(u), v.max(u), w));
        }
    }
    out
}

/// The original Baswana–Sen `(2k−1)`-spanner (Algorithm 1): phase 1 over the
/// full graph plus phase 2.
pub fn baswana_sen(g: &Graph, k: usize, seed: u64) -> (Graph, BsPhase1) {
    let full: Vec<Edge> = g.edges().to_vec();
    let levels: Vec<Vec<Edge>> = (0..k).map(|_| full.clone()).collect();
    let p1 = phase1(g.n(), &levels, k, seed, g.n());
    let mut edges = p1.edges.clone();
    edges.extend(phase2(g, &p1));
    (Graph::new(g.n(), edges), p1)
}

/// The paper's modified Baswana–Sen (Algorithm 2): phase 1 over per-level
/// subsamples (each edge kept independently with probability `p`), phase 2
/// over the full graph. Lemma 4.3: `(2k−1)`-spanner of expected size
/// `O(k·n^(1+1/k)/p)`.
pub fn modified_baswana_sen(g: &Graph, k: usize, p: f64, seed: u64) -> (Graph, BsPhase1) {
    assert!(
        (0.0..=1.0).contains(&p),
        "sampling probability must be in [0,1]"
    );
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x90D1F1ED);
    let levels: Vec<Vec<Edge>> = (0..k)
        .map(|_| {
            g.edges()
                .iter()
                .filter(|_| rng.random_bool(p))
                .copied()
                .collect()
        })
        .collect();
    let p1 = phase1(g.n(), &levels, k, seed, g.n());
    let mut edges = p1.edges.clone();
    edges.extend(phase2(g, &p1));
    (Graph::new(g.n(), edges), p1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_graph::{generators, verify_spanner};

    #[test]
    fn original_is_a_2k_minus_1_spanner() {
        for (k, seed) in [(2usize, 1u64), (3, 2), (4, 3)] {
            let g = generators::gnm(120, 900, seed);
            let (h, _) = baswana_sen(&g, k, seed);
            let r = verify_spanner(&g, &h, None, 0);
            assert!(
                r.within((2 * k - 1) as f64),
                "k={k}: stretch {} > {}",
                r.max_stretch,
                2 * k - 1
            );
        }
    }

    #[test]
    fn modified_is_a_2k_minus_1_spanner_for_any_p() {
        for p in [0.1f64, 0.3, 0.7] {
            let g = generators::gnm(100, 800, 7);
            let k = 3;
            let (h, _) = modified_baswana_sen(&g, k, p, 11);
            let r = verify_spanner(&g, &h, None, 0);
            assert!(
                r.within((2 * k - 1) as f64),
                "p={p}: stretch {} > {}",
                r.max_stretch,
                2 * k - 1
            );
        }
    }

    #[test]
    fn modified_size_grows_as_p_shrinks() {
        // Lemma 4.3: expected size O(k n^{1+1/k} / p) — halving p should
        // not *shrink* the spanner; across a wide p range the growth shows.
        let g = generators::gnm(200, 4000, 5);
        let k = 3;
        let size_at = |p: f64| {
            // Average over seeds to tame variance.
            (0..5)
                .map(|s| modified_baswana_sen(&g, k, p, 100 + s).0.m())
                .sum::<usize>() as f64
                / 5.0
        };
        let big_p = size_at(0.9);
        let small_p = size_at(0.15);
        assert!(
            small_p > 1.2 * big_p,
            "expected 1/p growth: size(p=0.15)={small_p} vs size(p=0.9)={big_p}"
        );
    }

    #[test]
    fn modified_with_p_one_matches_original_structure() {
        let g = generators::gnm(80, 400, 3);
        let (h_orig, _) = baswana_sen(&g, 3, 42);
        let (h_mod, _) = modified_baswana_sen(&g, 3, 1.0, 42);
        // Same seed, p=1 → same center sampling; sizes should be close
        // (sampling RNG draw order differs, so exact equality is not
        // guaranteed — but both must be valid spanners of similar size).
        assert!(h_mod.m() <= 2 * h_orig.m() + g.n());
        assert!(verify_spanner(&g, &h_mod, None, 0).within(5.0));
    }

    #[test]
    fn histories_have_length_equal_to_removal_level() {
        let g = generators::gnm(60, 300, 9);
        let (_, p1) = baswana_sen(&g, 3, 9);
        for v in 0..60 {
            let h = p1.history(v);
            if let Some(t) = p1.removal_level[v as usize] {
                assert_eq!(h.len(), t);
            }
            // History entries are the recorded centers.
            for (i, c) in h.iter().enumerate() {
                assert_eq!(p1.centers[i][v as usize], Some(*c));
            }
        }
    }

    #[test]
    fn every_vertex_eventually_removed() {
        let g = generators::gnm(50, 200, 4);
        let (_, p1) = baswana_sen(&g, 2, 4);
        for v in 0..50 {
            assert!(
                p1.removal_level[v as usize].is_some(),
                "vertex {v} never removed"
            );
        }
    }

    #[test]
    fn stats_account_for_all_vertices() {
        let g = generators::gnm(90, 500, 6);
        let (_, p1) = baswana_sen(&g, 3, 6);
        let s = &p1.stats[0];
        assert_eq!(s.retained + s.reclustered + s.removed, 90);
    }
}
