//! `O(k)`-spanners of size `O(n^(1+1/k))` in `O(1)` rounds (§4, Thm 4.1).
//!
//! Pipeline (unweighted):
//!
//! 1. [`clustering`] builds the clustering graphs `A_0 … A_{logΔ−1}`
//!    (Algorithm 5); star edges join the spanner immediately.
//! 2. For every level `i`, a `(2k−1)`-spanner `H_i` of `A_i` is computed
//!    (Algorithm 6): levels with `p_i = min(1, 2k·i^(1+1/k)/2^i) = 1` ship
//!    all of `E_i` to the large machine, which spans them exactly (original
//!    Baswana–Sen); the remaining levels ship `k−1` subsamples and run the
//!    paper's **modified** Baswana–Sen ([`baswana_sen`]): phase 1 on the
//!    large machine, removal edges found by the small machines against the
//!    full `E_i` via the disseminated cluster-center histories.
//! 3. Lemma A.2 combines: `H = stars ∪ ⋃ᵢ E_G(H_i)` is a `(6k−1)`-spanner
//!    of `G` with expected `O(n^(1+1/k))` edges.
//!
//! The weighted case reduces to `O(log W)` unweighted instances by weight
//! class (factor-2 buckets), giving a `(12k−1)`-spanner of size
//! `O(n^(1+1/k) log n)` — the reduction the paper cites from \[22\].

pub mod apsp;
pub mod baswana_sen;
pub mod clustering;

use crate::common;
use clustering::{level_edge_key, unpack_level_edge, LevelEdgeKey};
use mpc_graph::{Edge, Graph, VertexId};
use mpc_runtime::primitives::{aggregate_by_key, gather_to};
use mpc_runtime::{Cluster, ModelViolation, ShardedVec};
use rand::Rng;
use std::collections::HashMap;

/// Statistics of a spanner run.
#[derive(Clone, Debug, Default)]
pub struct SpannerStats {
    /// Number of clustering-graph levels.
    pub levels: usize,
    /// Levels shipped in full (`p_i = 1` or `i = 0`).
    pub full_levels: Vec<usize>,
    /// Levels spanned through modified Baswana–Sen with their `p_i`.
    pub sampled_levels: Vec<(usize, f64)>,
    /// Star edges contributed by the clustering structure.
    pub star_edges: usize,
    /// Phase-1 (re-clustering) edges added by the large machine.
    pub phase1_edges: usize,
    /// Removal edges added by the small machines.
    pub removal_edges: usize,
    /// Per-level `|E_i|`.
    pub level_edge_counts: Vec<usize>,
    /// Weight classes processed (1 for unweighted input).
    pub weight_classes: usize,
}

/// Output of the spanner algorithms.
#[derive(Clone, Debug)]
pub struct SpannerResult {
    /// The spanner (a subgraph of the input).
    pub spanner: Graph,
    /// Execution statistics.
    pub stats: SpannerStats,
}

/// The per-level sampling probability
/// `p_i = min(1, 2k·i^(1+1/k)/2^i)` (level 0 ships in full).
pub fn sampling_probability(k: usize, i: usize) -> f64 {
    if i == 0 {
        return 1.0;
    }
    let k_f = k as f64;
    (2.0 * k_f * (i as f64).powf(1.0 + 1.0 / k_f) / (1u64 << i) as f64).min(1.0)
}

/// Output of the large machine's local per-level spanning step.
pub struct LevelSpans {
    /// Witness-mapped phase-1 spanner edges (full levels exact, sampled
    /// levels re-clustering edges).
    pub edges: Vec<Edge>,
    /// Phase-1 clustering traces of the sampled levels (for history
    /// dissemination), keyed by level.
    pub phase1: std::collections::BTreeMap<usize, baswana_sen::BsPhase1>,
    /// `(level, σ_u, σ_v)` → smallest original witness edge.
    pub witness: HashMap<LevelEdgeKey, Edge>,
    /// Phase-1 edge count (for [`SpannerStats::phase1_edges`]).
    pub phase1_edges: usize,
}

/// The large machine's local step: span every level from the gathered
/// `(tag, cluster-edge key, witness)` triples — full levels via original
/// Baswana–Sen (phases 1+2), sampled levels via the modified phase 1 only.
/// Shared with the engine's `SpannerProgram`, which must reproduce it
/// bit-for-bit from the same gather order.
pub fn span_levels(n: usize, k: usize, received: &[(u32, LevelEdgeKey, Edge)]) -> LevelSpans {
    let mut witness: HashMap<LevelEdgeKey, Edge> = HashMap::new();
    let mut full_edges: HashMap<usize, Vec<Edge>> = HashMap::new();
    let mut sampled_edges: HashMap<usize, Vec<Vec<Edge>>> = HashMap::new();
    for (tag, key, orig) in received {
        let (i, a, b) = unpack_level_edge(key);
        witness.insert(*key, *orig);
        let j = (tag & 0xFF) as usize;
        if j == 0 {
            full_edges
                .entry(i)
                .or_default()
                .push(Edge::unweighted(a, b));
        } else {
            let slot = sampled_edges
                .entry(i)
                .or_insert_with(|| vec![Vec::new(); k]);
            slot[j - 1].push(Edge::unweighted(a, b));
        }
    }
    let mut spanner_edges: Vec<Edge> = Vec::new();
    let mut phase1_edges = 0usize;
    // Full levels: exact (2k−1)-spanner via original Baswana–Sen.
    let mut full_levels: Vec<usize> = full_edges.keys().copied().collect();
    full_levels.sort_unstable();
    for i in full_levels {
        let level_edges = &full_edges[&i];
        let a_i = Graph::new(n, level_edges.iter().copied());
        let n_i = distinct_endpoints(level_edges).max(2);
        let levels: Vec<Vec<Edge>> = (0..k).map(|_| a_i.edges().to_vec()).collect();
        let p1 = baswana_sen::phase1(n, &levels, k, 0xF011 + i as u64, n_i);
        let mut h_i = p1.edges.clone();
        h_i.extend(baswana_sen::phase2(&a_i, &p1));
        phase1_edges += h_i.len();
        for e in h_i {
            spanner_edges.push(witness[&level_edge_key(i, e.u, e.v)]);
        }
    }
    // Sampled levels: phase 1 only; remember histories for dissemination.
    let mut phase1_by_level: std::collections::BTreeMap<usize, baswana_sen::BsPhase1> =
        std::collections::BTreeMap::new();
    let mut sampled_levels: Vec<usize> = sampled_edges.keys().copied().collect();
    sampled_levels.sort_unstable();
    for i in sampled_levels {
        let subs = &sampled_edges[&i];
        let n_i = distinct_endpoints(&subs.concat()).max(2);
        // BS levels 1..k−1 use subsample j = 1..k−1; level k is unused.
        let mut levels: Vec<Vec<Edge>> = subs[..k - 1].to_vec();
        levels.push(Vec::new());
        let p1 = baswana_sen::phase1(n, &levels, k, 0x5AAD + i as u64, n_i);
        phase1_edges += p1.edges.len();
        for e in &p1.edges {
            spanner_edges.push(witness[&level_edge_key(i, e.u, e.v)]);
        }
        phase1_by_level.insert(i, p1);
    }
    LevelSpans {
        edges: spanner_edges,
        phase1: phase1_by_level,
        witness,
        phase1_edges,
    }
}

/// Per-edge removal-candidate step (Algorithm 6 lines 21–29): vertex `x`
/// removed at level `t`, neighbor cluster `c` at level `t−1` reached
/// through `y` — the owners keep the smallest `y` per `(level, x, c)`.
/// Own-cluster candidates are skipped (the in-cluster path already
/// certifies the stretch, as in classic Baswana–Sen).
pub fn removal_candidates_for(
    level: usize,
    a: VertexId,
    b: VertexId,
    ha: &[u32],
    hb: &[u32],
    orig: Edge,
) -> Vec<((u64, u64), (u32, Edge))> {
    let mut out = Vec::new();
    for ((x, hx), (y, hy)) in [((a, ha), (b, hb)), ((b, hb), (a, ha))] {
        let t = hx.len();
        // x was removed at level t; y must still be clustered at t−1.
        if t >= 1 && hy.len() >= t {
            let c = hy[t - 1];
            if hx[t - 1] != c {
                out.push(((((level as u64) << 32) | x as u64, c as u64), (y, orig)));
            }
        }
    }
    out
}

/// Computes a `(6k−1)`-spanner of an **unweighted** graph in `O(1)` rounds.
///
/// `edges` is the sharded input (weights are ignored — the spanner of a
/// weighted graph goes through [`heterogeneous_spanner_weighted`]).
///
/// # Errors
///
/// Propagates capacity violations in strict mode.
pub fn heterogeneous_spanner(
    cluster: &mut Cluster,
    n: usize,
    edges: &ShardedVec<Edge>,
    k: usize,
) -> Result<SpannerResult, ModelViolation> {
    assert!(k >= 2, "spanner parameter k must be at least 2");
    let large = cluster.large().expect("spanner requires a large machine");
    let owners = common::owners(cluster);

    // Step 1: clustering graphs.
    let cg = clustering::build_clustering_graphs(cluster, n, edges)?;
    let mut stats = SpannerStats {
        levels: cg.levels,
        level_edge_counts: cg.level_edge_counts.clone(),
        weight_classes: 1,
        ..SpannerStats::default()
    };

    // Step 2: per-level sampling probabilities.
    let p_of = |i: usize| sampling_probability(k, i);
    for i in 0..cg.levels {
        if p_of(i) >= 1.0 {
            stats.full_levels.push(i);
        } else {
            stats.sampled_levels.push((i, p_of(i)));
        }
    }

    // Ship full levels + k−1 subsamples of the rest to the large machine.
    // Message: (tag = (i << 8) | j, (σ_u, σ_v), witness edge); j = 0 ⇒ full.
    let mut payload: ShardedVec<(u32, LevelEdgeKey, Edge)> = ShardedVec::new(cluster);
    for mid in 0..cg.cluster_edges.machines() {
        let shard = payload.shard_mut(mid);
        for (key, orig) in cg.cluster_edges.shard(mid) {
            let (i, _, _) = unpack_level_edge(key);
            let p = p_of(i);
            if p >= 1.0 {
                shard.push(((i as u32) << 8, *key, *orig));
            } else {
                for j in 1..k as u32 {
                    if cluster.rng(mid).random_bool(p) {
                        shard.push((((i as u32) << 8) | j, *key, *orig));
                    }
                }
            }
        }
    }
    let received = gather_to(cluster, "spanner.samples", &payload, large)?;
    cluster.account("spanner.large.samples", large, received.len() * 5)?;

    // Large machine: span each level locally (shared step; the engine's
    // `SpannerProgram` calls the same function on the same gather order).
    let spans = span_levels(n, k, &received);
    let witness = spans.witness;
    let phase1_by_level = spans.phase1;
    let mut spanner_edges = spans.edges;
    stats.phase1_edges += spans.phase1_edges;

    // Step 3: disseminate center histories; the small machines add removal
    // edges (Algorithm 6 lines 21–29) via candidate aggregation. Histories
    // must cover every cluster id of a sampled level that any machine might
    // query — all endpoints of that level's witness keys.
    let mut hist_pairs: Vec<(u64, Vec<u32>)> = Vec::new();
    for (&i, p1) in &phase1_by_level {
        let mut verts: Vec<VertexId> = witness
            .keys()
            .filter(|key| unpack_level_edge(key).0 == i)
            .flat_map(|key| {
                let (_, a, b) = unpack_level_edge(key);
                [a, b]
            })
            .collect();
        verts.sort_unstable();
        verts.dedup();
        for v in verts {
            hist_pairs.push((((i as u64) << 32) | v as u64, p1.history(v)));
        }
    }
    let hist_words: usize = hist_pairs.iter().map(|(_, h)| 1 + h.len()).sum();
    cluster.account("spanner.large.hist", large, hist_words)?;
    // Requests: per machine, the (level, endpoint) pairs of its E_i edges.
    let mut requests: ShardedVec<u64> = ShardedVec::new(cluster);
    for mid in 0..cg.cluster_edges.machines() {
        let shard = requests.shard_mut(mid);
        for (key, _orig) in cg.cluster_edges.shard(mid) {
            let (i, a, b) = unpack_level_edge(key);
            if phase1_by_level.contains_key(&i) {
                shard.push(((i as u64) << 32) | a as u64);
                shard.push(((i as u64) << 32) | b as u64);
            }
        }
        shard.sort_unstable();
        shard.dedup();
    }
    let delivered = mpc_runtime::primitives::disseminate(
        cluster,
        "spanner.hist",
        &hist_pairs,
        large,
        &requests,
        &owners,
    )?;

    // Candidates: vertex u removed at t, neighbor cluster c at level t−1
    // through v — keep the smallest v per (level, u, c). Own-cluster
    // candidates are skipped (the in-cluster path already certifies the
    // stretch, as in classic Baswana–Sen).
    let mut cand_items: ShardedVec<((u64, u64), (u32, Edge))> = ShardedVec::new(cluster);
    for mid in 0..cg.cluster_edges.machines() {
        let hist: HashMap<u64, &Vec<u32>> = delivered
            .shard(mid)
            .iter()
            .map(|(k2, h)| (*k2, h))
            .collect();
        let shard = cand_items.shard_mut(mid);
        for (key, orig) in cg.cluster_edges.shard(mid) {
            let (i, a, b) = unpack_level_edge(key);
            if !phase1_by_level.contains_key(&i) {
                continue;
            }
            let (Some(ha), Some(hb)) = (
                hist.get(&(((i as u64) << 32) | a as u64)),
                hist.get(&(((i as u64) << 32) | b as u64)),
            ) else {
                continue;
            };
            shard.extend(removal_candidates_for(i, a, b, ha, hb, *orig));
        }
    }
    let removal = aggregate_by_key(cluster, "spanner.cands", &cand_items, &owners, |a, b| {
        if a.0 <= b.0 {
            *a
        } else {
            *b
        }
    })?;
    let removal_edges: ShardedVec<Edge> = ShardedVec::from_shards(
        (0..removal.machines())
            .map(|mid| removal.shard(mid).iter().map(|(_, (_v, e))| *e).collect())
            .collect(),
    );

    // Combine (Lemma A.2): stars ∪ removal edges ∪ large-local edges.
    let stars = gather_to(cluster, "spanner.stars", &cg.star_edges, large)?;
    let removals = gather_to(cluster, "spanner.removals", &removal_edges, large)?;
    stats.star_edges = stars.len();
    stats.removal_edges = removals.len();
    spanner_edges.extend(stars);
    spanner_edges.extend(removals);
    let spanner = Graph::new(n, spanner_edges.into_iter().map(|e| e.normalized()));
    cluster.release("spanner.large.samples");
    cluster.release("spanner.large.hist");
    cluster.account("spanner.large.result", large, spanner.m() * 2)?;
    Ok(SpannerResult { spanner, stats })
}

/// Computes a `(12k−1)`-spanner of a **weighted** graph: one unweighted
/// instance per factor-2 weight class (the \[22\] reduction), keeping each
/// witness edge's true weight. Expected size `O(n^(1+1/k) log n)`.
///
/// The paper runs the classes in parallel; this implementation runs them
/// sequentially, so `cluster.rounds()` reports the *sum* — divide by
/// `stats.weight_classes` for the parallel-round figure.
///
/// # Errors
///
/// Propagates capacity violations in strict mode.
pub fn heterogeneous_spanner_weighted(
    cluster: &mut Cluster,
    n: usize,
    edges: &ShardedVec<Edge>,
    k: usize,
) -> Result<SpannerResult, ModelViolation> {
    weighted_by_classes(n, edges, |class_edges| {
        heterogeneous_spanner(cluster, n, class_edges, k)
    })
}

/// The \[22\] weight-class reduction, shared by the legacy call-style
/// weighted spanner and the engine adapter: split the edges into factor-2
/// weight classes, run `run_class` on every non-empty class, restore the
/// true weights on each class's witness edges, and merge the statistics.
///
/// # Errors
///
/// Propagates whatever `run_class` surfaces.
pub fn weighted_by_classes<E>(
    n: usize,
    edges: &ShardedVec<Edge>,
    mut run_class: impl FnMut(&ShardedVec<Edge>) -> Result<SpannerResult, E>,
) -> Result<SpannerResult, E> {
    let classes = weight_class_shards(edges);
    let mut results = Vec::with_capacity(classes.shards.len());
    for (_c, class_edges) in &classes.shards {
        results.push(run_class(class_edges)?);
    }
    Ok(merge_class_results(n, &classes, results))
}

/// The factor-2 weight classes of a sharded edge set: `total` is the class
/// count of the weight range (`⌊log₂ W⌋ + 1`, including empty classes —
/// the figure `SpannerStats::weight_classes` reports), `shards` the
/// non-empty classes (with their class index) in ascending weight order —
/// the order both the sequential loop and the batched scheduler's
/// instance list use, so per-machine RNG draws line up across the paths.
pub struct WeightClasses {
    /// `⌊log₂ W⌋ + 1` — factor-2 classes covering the weight range.
    pub total: usize,
    /// `(class index, class-filtered shards)` for every non-empty class.
    pub shards: Vec<(usize, ShardedVec<Edge>)>,
}

/// Splits `edges` into factor-2 weight classes (see [`WeightClasses`]).
pub fn weight_class_shards(edges: &ShardedVec<Edge>) -> WeightClasses {
    let max_w = edges.iter().map(|(_, e)| e.w).max().unwrap_or(1).max(1);
    let total = (max_w as f64).log2().floor() as usize + 1;
    let mut shards = Vec::new();
    for c in 0..total {
        let (lo, hi) = (1u64 << c, (1u64 << (c + 1)) - 1);
        let class_edges: ShardedVec<Edge> = ShardedVec::from_shards(
            (0..edges.machines())
                .map(|mid| {
                    edges
                        .shard(mid)
                        .iter()
                        .filter(|e| (lo..=hi).contains(&e.w))
                        .copied()
                        .collect()
                })
                .collect(),
        );
        if class_edges.total_len() > 0 {
            shards.push((c, class_edges));
        }
    }
    WeightClasses { total, shards }
}

/// Merges the per-class spanners back into one weighted result: restores
/// each class's true weights on its witness edges and folds the
/// statistics — the tail of the \[22\] reduction, shared by the sequential
/// loop and the batched multi-program run (`results[i]` belongs to
/// `classes.shards[i]`).
pub fn merge_class_results(
    n: usize,
    classes: &WeightClasses,
    results: Vec<SpannerResult>,
) -> SpannerResult {
    assert_eq!(classes.shards.len(), results.len(), "one result per class");
    let mut all_edges: Vec<Edge> = Vec::new();
    let mut stats = SpannerStats {
        weight_classes: classes.total,
        ..Default::default()
    };
    for ((_c, class_edges), r) in classes.shards.iter().zip(results) {
        stats.levels = stats.levels.max(r.stats.levels);
        stats.star_edges += r.stats.star_edges;
        stats.phase1_edges += r.stats.phase1_edges;
        stats.removal_edges += r.stats.removal_edges;
        // Restore true weights on the witness edges of this class.
        let class_graph = common::collect_graph(n, class_edges);
        let weight_of: HashMap<(VertexId, VertexId), u64> = class_graph
            .edges()
            .iter()
            .map(|e| ((e.u, e.v), e.w))
            .collect();
        for e in r.spanner.edges() {
            let w = weight_of.get(&(e.u, e.v)).copied().unwrap_or(e.w);
            all_edges.push(Edge::new(e.u, e.v, w));
        }
    }
    SpannerResult {
        spanner: Graph::new(n, all_edges),
        stats,
    }
}

fn distinct_endpoints(edges: &[Edge]) -> usize {
    let mut v: Vec<VertexId> = edges.iter().flat_map(|e| [e.u, e.v]).collect();
    v.sort_unstable();
    v.dedup();
    v.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_graph::{generators, verify_spanner};
    use mpc_runtime::ClusterConfig;

    fn run(g: &Graph, k: usize, seed: u64) -> (SpannerResult, u64) {
        let mut cluster = Cluster::new(
            ClusterConfig::new(g.n(), g.m())
                .seed(seed)
                .polylog_exponent(1.6),
        );
        let input = common::distribute_edges(&cluster, g);
        let r = heterogeneous_spanner(&mut cluster, g.n(), &input, k).unwrap();
        (r, cluster.rounds())
    }

    #[test]
    fn unweighted_stretch_is_at_most_6k_minus_1() {
        for (k, seed) in [(2usize, 1u64), (3, 2)] {
            let g = generators::gnm(120, 1000, seed);
            let (r, _) = run(&g, k, seed);
            let rep = verify_spanner(&g, &r.spanner, None, 0);
            assert!(
                rep.within((6 * k - 1) as f64),
                "k={k}: stretch {} > {}",
                rep.max_stretch,
                6 * k - 1
            );
        }
    }

    #[test]
    fn spanner_is_sparser_than_input_on_dense_graphs() {
        let g = generators::gnm(150, 4000, 4);
        let (r, _) = run(&g, 3, 4);
        assert!(
            r.spanner.m() < g.m() / 2,
            "spanner has {} of {} edges",
            r.spanner.m(),
            g.m()
        );
    }

    #[test]
    fn rounds_are_constant_in_n() {
        let mut rounds = Vec::new();
        for exp in [7usize, 8, 9] {
            let n = 1 << exp;
            let g = generators::gnm(n, n * 8, 9);
            let (_, r) = run(&g, 3, 9);
            rounds.push(r);
        }
        // O(1) rounds: no growth trend beyond small jitter.
        let max = *rounds.iter().max().unwrap();
        let min = *rounds.iter().min().unwrap();
        assert!(
            max <= min + 8,
            "rounds should be ~constant in n, got {rounds:?}"
        );
    }

    #[test]
    fn weighted_stretch_is_at_most_12k_minus_1() {
        let g = generators::gnm(100, 800, 6).with_random_weights(64, 6);
        let k = 2;
        let mut cluster = Cluster::new(
            ClusterConfig::new(g.n(), g.m())
                .seed(6)
                .polylog_exponent(1.6),
        );
        let input = common::distribute_edges(&cluster, &g);
        let r = heterogeneous_spanner_weighted(&mut cluster, g.n(), &input, k).unwrap();
        let rep = verify_spanner(&g, &r.spanner, None, 0);
        assert!(
            rep.within((12 * k - 1) as f64),
            "stretch {} > {}",
            rep.max_stretch,
            12 * k - 1
        );
        assert!(r.stats.weight_classes >= 2);
    }

    #[test]
    fn stats_are_populated() {
        let g = generators::gnm(100, 1200, 3);
        let (r, _) = run(&g, 3, 3);
        assert!(r.stats.levels >= 2);
        assert_eq!(
            r.stats.full_levels.len() + r.stats.sampled_levels.len(),
            r.stats.levels
        );
        assert!(r.stats.star_edges > 0);
    }
}
