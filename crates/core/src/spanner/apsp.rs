//! `O(log n)`-approximate all-pairs shortest paths (Corollary 4.2).
//!
//! With `k = ⌈log₂ n⌉` the spanner has `Õ(n)` edges and fits on the large
//! machine, which then answers arbitrary distance queries locally with no
//! further communication — an APSP *oracle* with multiplicative error
//! `O(log n)` (6k−1 unweighted, 12k−1 weighted).

use crate::common;
use mpc_graph::{traversal, Edge, Graph, VertexId};
use mpc_runtime::{Cluster, ModelViolation, ShardedVec};

/// A distance oracle resident on the large machine.
#[derive(Clone, Debug)]
pub struct ApspOracle {
    spanner: Graph,
    adj: mpc_graph::Adjacency,
    /// The stretch guarantee of the underlying spanner.
    pub stretch_bound: usize,
}

impl ApspOracle {
    /// Wraps an already-computed spanner as a distance oracle (the engine
    /// registry's `apsp` entry computes the spanner through the executor
    /// and only needs the local indexing step done here;
    /// [`build_apsp_oracle`] stays the call-style one-shot).
    pub fn from_spanner(spanner: Graph, stretch_bound: usize) -> Self {
        let adj = spanner.adjacency();
        ApspOracle {
            spanner,
            adj,
            stretch_bound,
        }
    }

    /// The stretch parameter `k = ⌈log₂ n⌉` (floored at 2) Corollary 4.2
    /// instantiates the spanner with, shared by every APSP entry point.
    pub fn stretch_parameter(n: usize) -> usize {
        ((n.max(4) as f64).log2().ceil() as usize).max(2)
    }

    /// Approximate distance from `u` to `v` (`u64::MAX` if disconnected).
    ///
    /// One Dijkstra per call — batch with [`distances_from`](Self::distances_from)
    /// when querying many targets.
    pub fn distance(&self, u: VertexId, v: VertexId) -> u64 {
        traversal::dijkstra(&self.adj, u)[v as usize]
    }

    /// Approximate distances from `source` to every vertex.
    pub fn distances_from(&self, source: VertexId) -> Vec<u64> {
        traversal::dijkstra(&self.adj, source)
    }

    /// The spanner backing the oracle.
    pub fn spanner(&self) -> &Graph {
        &self.spanner
    }
}

/// Builds the APSP oracle in `O(1)` rounds.
///
/// Uses the weighted spanner pipeline when the input has non-unit weights.
///
/// # Errors
///
/// Propagates capacity violations in strict mode.
pub fn build_apsp_oracle(
    cluster: &mut Cluster,
    n: usize,
    edges: &ShardedVec<Edge>,
) -> Result<ApspOracle, ModelViolation> {
    let k = ApspOracle::stretch_parameter(n);
    let weighted = edges.iter().any(|(_, e)| e.w != 1);
    let result = if weighted {
        super::heterogeneous_spanner_weighted(cluster, n, edges, k)?
    } else {
        super::heterogeneous_spanner(cluster, n, edges, k)?
    };
    let stretch_bound = if weighted { 12 * k - 1 } else { 6 * k - 1 };
    Ok(ApspOracle::from_spanner(result.spanner, stretch_bound))
}

/// Measures the worst observed stretch of `oracle` against exact distances
/// over `sources` BFS/Dijkstra sources (diagnostics for experiment E9).
pub fn measured_stretch(g: &Graph, oracle: &ApspOracle, sources: usize) -> f64 {
    let adj = g.adjacency();
    let mut worst: f64 = 1.0;
    let step = (g.n() / sources.max(1)).max(1);
    for s in (0..g.n()).step_by(step) {
        let exact = traversal::dijkstra(&adj, s as VertexId);
        let approx = oracle.distances_from(s as VertexId);
        for v in 0..g.n() {
            if v == s || exact[v] == traversal::UNREACHABLE {
                continue;
            }
            if approx[v] == traversal::UNREACHABLE {
                return f64::INFINITY;
            }
            worst = worst.max(approx[v] as f64 / exact[v] as f64);
        }
    }
    worst
}

/// Convenience: distributes `g`, builds the oracle, returns it with the
/// round count (used by examples and benches).
///
/// # Errors
///
/// Propagates capacity violations in strict mode.
pub fn oracle_for_graph(g: &Graph, seed: u64) -> Result<(ApspOracle, u64), ModelViolation> {
    let mut cluster = Cluster::new(
        mpc_runtime::ClusterConfig::new(g.n(), g.m().max(1))
            .seed(seed)
            .polylog_exponent(1.6),
    );
    let input = common::distribute_edges(&cluster, g);
    let oracle = build_apsp_oracle(&mut cluster, g.n(), &input)?;
    Ok((oracle, cluster.rounds()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_graph::generators;

    #[test]
    fn oracle_stretch_is_within_the_log_bound() {
        let g = generators::gnm(128, 512, 3);
        let (oracle, rounds) = oracle_for_graph(&g, 3).unwrap();
        let stretch = measured_stretch(&g, &oracle, 16);
        assert!(
            stretch <= oracle.stretch_bound as f64,
            "stretch {stretch} exceeds bound {}",
            oracle.stretch_bound
        );
        assert!(rounds > 0);
    }

    #[test]
    fn weighted_oracle_works() {
        let g = generators::gnm(96, 400, 5).with_random_weights(32, 5);
        let (oracle, _) = oracle_for_graph(&g, 5).unwrap();
        let stretch = measured_stretch(&g, &oracle, 12);
        assert!(stretch <= oracle.stretch_bound as f64, "stretch {stretch}");
    }

    #[test]
    fn oracle_distances_match_dijkstra_on_its_own_spanner() {
        let g = generators::gnm(64, 256, 7);
        let (oracle, _) = oracle_for_graph(&g, 7).unwrap();
        let d = oracle.distances_from(0);
        assert_eq!(d[0], 0);
        assert_eq!(oracle.distance(0, 5), d[5]);
    }
}
