//! Distributed construction of the clustering graphs `A_0 … A_{logΔ−1}`
//! (Algorithm 5 / Lemma A.1, after Dory–Fischer–Khoury–Leitersdorf \[22\]).
//!
//! The pipeline (all `O(1)` rounds, levels and trials batched into shared
//! exchanges):
//!
//! 1. degrees via aggregation (Claim 2);
//! 2. the large machine samples the candidate hitting sets `D^j_i`
//!    (probability `i/2^i`, `trials` independent trials per level) and
//!    disseminates per-vertex membership bitmasks (Claim 3);
//! 3. coverage aggregation adds every uncovered vertex of degree `≥ 2^i` to
//!    `D^j_i`; the large machine keeps the smallest trial per level
//!    (`D_i`) and forms `B_i = ∪_{j≥i} D_j`;
//! 4. star centers: `i_u = max{i : u ∈ B_i or N(u) ∩ B_i ≠ ∅}`,
//!    `σ_u = u` if `u ∈ B_{i_u}`, else `u`'s smallest neighbor in `B_{i_u}`
//!    (the paper picks a random neighbor; any works). Star edges `(u, σ_u)`
//!    join the spanner directly;
//! 5. cluster edges: an edge `{u,v}` with `⌊log₂ min(deg u, deg v)⌋ = i` and
//!    `σ_u ≠ σ_v` contributes `(σ_u, σ_v)` to `E_i`, carrying its smallest
//!    original witness edge (`E_G`, Lemma A.2).

use crate::common;
use mpc_graph::{Edge, VertexId};
use mpc_runtime::primitives::{aggregate_by_key, gather_to, lookup};
use mpc_runtime::{Cluster, MachineId, ModelViolation, ShardedVec};
use rand::Rng;

/// Number of independent hitting-set trials per level.
///
/// The paper uses `log n` parallel trials to make the size bound hold w.h.p.
/// (Algorithm 5, line 3); a small constant suffices at simulator scale and
/// keeps the bitmasks one word wide (substitution recorded in DESIGN.md §4).
pub const HITTING_SET_TRIALS: usize = 4;

/// Key of a cluster edge: `((level << 32) | σ_u, σ_v)` with `σ_u < σ_v`.
pub type LevelEdgeKey = (u64, u64);

/// Packs a cluster-edge key.
pub fn level_edge_key(level: usize, cu: VertexId, cv: VertexId) -> LevelEdgeKey {
    let (a, b) = if cu <= cv { (cu, cv) } else { (cv, cu) };
    (((level as u64) << 32) | a as u64, b as u64)
}

/// Unpacks a cluster-edge key into `(level, σ_u, σ_v)`.
pub fn unpack_level_edge(key: &LevelEdgeKey) -> (usize, VertexId, VertexId) {
    (
        (key.0 >> 32) as usize,
        (key.0 & 0xFFFF_FFFF) as VertexId,
        key.1 as VertexId,
    )
}

/// Number of clustering levels for maximum degree `delta`
/// (`⌊log₂ Δ⌋`, at least 1).
pub fn levels_for_delta(delta: u32) -> usize {
    ((delta.max(1) as f64).log2().floor() as usize).max(1)
}

/// Bit index of trial `j` of level `i` in the packed hitting-set masks.
pub fn hitting_bit(i: usize, j: usize) -> u64 {
    1u64 << ((i - 1) * HITTING_SET_TRIALS + j)
}

/// The large machine's hitting-set sampling (Algorithm 5 line 3): one
/// membership mask per vertex, levels `1..levels`, [`HITTING_SET_TRIALS`]
/// trials each with probability `i/2^i`. The nested draw order is part of
/// the contract — the engine's `SpannerProgram` replays it bit-for-bit on
/// the same RNG stream.
pub fn sample_hitting_masks(rng: &mut rand::rngs::SmallRng, n: usize, levels: usize) -> Vec<u64> {
    let mut sampled: Vec<u64> = vec![0; n];
    for mask in sampled.iter_mut() {
        for i in 1..levels {
            let p = (i as f64 / (1u64 << i) as f64).min(1.0);
            for j in 0..HITTING_SET_TRIALS {
                if rng.random_bool(p) {
                    *mask |= hitting_bit(i, j);
                }
            }
        }
    }
    sampled
}

/// The large machine's local finish of the hitting sets: add uncovered
/// high-degree vertices, keep the smallest trial per level, and fold into
/// per-vertex `B_i = ∪_{lvl ≥ i} D_lvl` level masks.
pub fn finalize_b_masks(deg: &[u32], sampled: &[u64], covered: &[u64], levels: usize) -> Vec<u64> {
    let n = deg.len();
    let mut final_mask: Vec<u64> = vec![0; n];
    for v in 0..n {
        let mut m = sampled[v];
        for i in 1..levels {
            for j in 0..HITTING_SET_TRIALS {
                let b = hitting_bit(i, j);
                if deg[v] as u64 >= (1u64 << i) && sampled[v] & b == 0 && covered[v] & b == 0 {
                    m |= b;
                }
            }
        }
        final_mask[v] = m;
    }
    // D_0 = V (every vertex with an edge). Pick the smallest trial per level.
    let mut best_trial: Vec<usize> = vec![0; levels];
    for i in 1..levels {
        let mut best = usize::MAX;
        for j in 0..HITTING_SET_TRIALS {
            let size = (0..n)
                .filter(|&v| final_mask[v] & hitting_bit(i, j) != 0)
                .count();
            if size < best {
                best = size;
                best_trial[i] = j;
            }
        }
    }
    // B_i = ∪_{lvl >= i} D_lvl; encode as a per-vertex level mask.
    let mut b_mask: Vec<u64> = vec![0; n];
    for v in 0..n {
        let mut in_level = vec![false; levels];
        in_level[0] = deg[v] > 0; // D_0 = V
        for i in 1..levels {
            in_level[i] = final_mask[v] & hitting_bit(i, best_trial[i]) != 0;
        }
        let mut acc = false;
        for i in (0..levels).rev() {
            acc |= in_level[i];
            if acc {
                b_mask[v] |= 1 << i;
            }
        }
    }
    b_mask
}

/// Per-machine step: for every endpoint of the machine's edges, the
/// smallest neighbor inside `B_i` per level (`u32::MAX` = none) — the
/// candidate lists the vertex owners aggregate by elementwise minimum.
pub fn min_neighbor_candidates(
    levels: usize,
    edges: &[Edge],
    bmask_of: impl Fn(VertexId) -> u64,
) -> std::collections::BTreeMap<VertexId, Vec<u32>> {
    let mut per_vertex: std::collections::BTreeMap<VertexId, Vec<u32>> =
        std::collections::BTreeMap::new();
    for e in edges {
        for (x, y) in [(e.u, e.v), (e.v, e.u)] {
            let ym = bmask_of(y);
            let entry = per_vertex
                .entry(x)
                .or_insert_with(|| vec![u32::MAX; levels]);
            for i in 0..levels {
                if ym & (1 << i) != 0 {
                    entry[i] = entry[i].min(y);
                }
            }
        }
    }
    per_vertex
}

/// Owner-side step: the star center `σ_v` of a vertex from its own B-mask
/// and its aggregated neighbor candidates (Algorithm 5 line 9: `i_v` is the
/// highest level where `v ∈ B_i` or a neighbor is; `σ_v = v` if `v` itself
/// qualifies, else the smallest qualifying neighbor).
pub fn sigma_for(
    v: VertexId,
    bmask: u64,
    cand: Option<&Vec<u32>>,
    levels: usize,
) -> (VertexId, usize) {
    let mut iu = 0usize;
    for i in (0..levels).rev() {
        let self_in = bmask & (1 << i) != 0;
        let nbr_in = cand.is_some_and(|c| c[i] != u32::MAX);
        if self_in || nbr_in {
            iu = i;
            break;
        }
    }
    let sigma = if bmask & (1 << iu) != 0 {
        v
    } else {
        cand.expect("i_u > 0 implies a neighbor candidate")[iu]
    };
    (sigma, iu)
}

/// The clustering level of an edge: `⌊log₂ min(deg u, deg v)⌋`, clamped.
pub fn edge_level(du: u32, dv: u32, levels: usize) -> usize {
    let min_deg = du.min(dv).max(1);
    let level = (min_deg as f64).log2().floor() as usize;
    level.min(levels - 1)
}

/// The distributed clustering-graph structure.
#[derive(Debug)]
pub struct ClusteringGraphs {
    /// Number of levels (`⌈log₂ Δ⌉`, at least 1).
    pub levels: usize,
    /// Star edges `(u, σ_u)` — already spanner edges — owner-sharded.
    pub star_edges: ShardedVec<Edge>,
    /// Cluster edges with their smallest witness, owner-sharded by key.
    pub cluster_edges: ShardedVec<(LevelEdgeKey, Edge)>,
    /// Per-vertex `(σ_u, deg_u)`, owner-sharded (for lookups).
    pub sigma: ShardedVec<(VertexId, (VertexId, u32))>,
    /// `|E_i|` per level (known to the large machine).
    pub level_edge_counts: Vec<usize>,
    /// Approximate `|V_i|` per level: number of centers serving level `i`.
    pub level_vertex_counts: Vec<usize>,
}

/// Builds the clustering graphs; see the module docs.
///
/// # Errors
///
/// Propagates capacity violations in strict mode.
pub fn build_clustering_graphs(
    cluster: &mut Cluster,
    n: usize,
    edges: &ShardedVec<Edge>,
) -> Result<ClusteringGraphs, ModelViolation> {
    let large = cluster
        .large()
        .expect("clustering graphs need a large machine");
    let owners = common::owners(cluster);

    // Step 1: degrees (aggregation) → owners → large.
    let mut deg_items: ShardedVec<(VertexId, u32)> = ShardedVec::new(cluster);
    for mid in 0..edges.machines() {
        let shard = deg_items.shard_mut(mid);
        for e in edges.shard(mid) {
            shard.push((e.u, 1));
            shard.push((e.v, 1));
        }
    }
    let deg_at_owner = aggregate_by_key(cluster, "cg.degree", &deg_items, &owners, |a, b| a + b)?;
    let deg_pairs = gather_to(cluster, "cg.degree-up", &deg_at_owner, large)?;
    let mut deg: Vec<u32> = vec![0; n];
    for &(v, d) in &deg_pairs {
        deg[v as usize] = d;
    }
    let delta = deg.iter().copied().max().unwrap_or(1);
    let levels = levels_for_delta(delta);
    assert!(
        levels * HITTING_SET_TRIALS <= 60,
        "mask packing supports log Δ · trials <= 60"
    );

    // Step 2: the large machine samples D^j_i (i >= 1) and disseminates
    // per-vertex (deg, membership-mask) — O(polylog) bits per vertex.
    let sampled = sample_hitting_masks(cluster.rng(large), n, levels);
    let pairs: Vec<(VertexId, (u32, u64))> = (0..n as VertexId)
        .filter(|&v| deg[v as usize] > 0)
        .map(|v| (v, (deg[v as usize], sampled[v as usize])))
        .collect();
    let requests = common::endpoint_requests(cluster, edges, |e| (e.u, e.v));
    let delivered = mpc_runtime::primitives::disseminate(
        cluster, "cg.masks", &pairs, large, &requests, &owners,
    )?;

    // Step 3: coverage — for each vertex, OR of neighbors' sampled masks.
    let mut cover_items: ShardedVec<(VertexId, u64)> = ShardedVec::new(cluster);
    let mut local_info: Vec<std::collections::HashMap<VertexId, (u32, u64)>> = (0..cluster
        .machines())
        .map(|_| std::collections::HashMap::new())
        .collect();
    for mid in 0..cluster.machines() {
        local_info[mid] = delivered
            .shard(mid)
            .iter()
            .map(|&(v, dm)| (v, dm))
            .collect();
        let shard = cover_items.shard_mut(mid);
        for e in edges.shard(mid) {
            let mu = local_info[mid].get(&e.u).map_or(0, |x| x.1);
            let mv = local_info[mid].get(&e.v).map_or(0, |x| x.1);
            shard.push((e.u, mv));
            shard.push((e.v, mu));
        }
    }
    let cover_at_owner =
        aggregate_by_key(cluster, "cg.cover", &cover_items, &owners, |a, b| a | b)?;
    let cover_pairs = gather_to(cluster, "cg.cover-up", &cover_at_owner, large)?;
    let mut covered: Vec<u64> = vec![0; n];
    for &(v, c) in &cover_pairs {
        covered[v as usize] = c;
    }

    // Large machine: additions, best trial per level, B_i masks.
    // final D^j_i = sampled ∪ {u : deg(u) >= 2^i, not covered in D^j_i}.
    let b_mask = finalize_b_masks(&deg, &sampled, &covered, levels);

    // Step 4: disseminate B-masks; aggregate per-level min-neighbor-in-B.
    let b_pairs: Vec<(VertexId, u64)> = (0..n as VertexId)
        .filter(|&v| deg[v as usize] > 0)
        .map(|v| (v, b_mask[v as usize]))
        .collect();
    let delivered_b = mpc_runtime::primitives::disseminate(
        cluster, "cg.bmask", &b_pairs, large, &requests, &owners,
    )?;
    // Candidate neighbor per level: value = Vec<u32> (u32::MAX = none).
    let mut cand_items: ShardedVec<(VertexId, Vec<u32>)> = ShardedVec::new(cluster);
    for mid in 0..cluster.machines() {
        let bm: std::collections::HashMap<VertexId, u64> =
            delivered_b.shard(mid).iter().copied().collect();
        let per_vertex = min_neighbor_candidates(levels, edges.shard(mid), |y| {
            bm.get(&y).copied().unwrap_or(0)
        });
        *cand_items.shard_mut(mid) = per_vertex.into_iter().collect();
    }
    let cand_at_owner = aggregate_by_key(cluster, "cg.cands", &cand_items, &owners, |a, b| {
        a.iter().zip(b).map(|(x, y)| (*x).min(*y)).collect()
    })?;

    // The owners need (deg, B-mask) of their vertices: one scatter from large.
    let mut out = cluster.empty_outboxes::<(VertexId, (u32, u64))>();
    for v in 0..n as VertexId {
        if deg[v as usize] == 0 {
            continue;
        }
        let dst = mpc_runtime::primitives::owner_of(&v, &owners);
        out[large].push((dst, (v, (deg[v as usize], b_mask[v as usize]))));
    }
    let inboxes = cluster.exchange("cg.owner-info", out)?;
    let mut sigma: ShardedVec<(VertexId, (VertexId, u32))> = ShardedVec::new(cluster);
    let mut star_edges: ShardedVec<Edge> = ShardedVec::new(cluster);
    let mut center_level_counts: Vec<usize> = vec![0; levels];
    for (mid, inbox) in inboxes.into_iter().enumerate() {
        let cands: std::collections::HashMap<VertexId, &Vec<u32>> = cand_at_owner
            .shard(mid)
            .iter()
            .map(|(v, c)| (*v, c))
            .collect();
        for (_src, (v, (d, bmask))) in inbox {
            let nbr = cands.get(&v).copied();
            // i_u = max level where v ∈ B_i or some neighbor ∈ B_i.
            let (sigma_v, iu) = sigma_for(v, bmask, nbr, levels);
            sigma.shard_mut(mid).push((v, (sigma_v, d)));
            if sigma_v != v {
                star_edges.shard_mut(mid).push(Edge::unweighted(v, sigma_v));
            } else {
                // v is a center: serves levels 0..=i_u (the paper's V_i).
                for (lvl, count) in center_level_counts.iter_mut().enumerate().take(iu + 1) {
                    let _ = lvl;
                    *count += 1;
                }
            }
        }
    }
    // Center counts were tallied owner-side in this simulation for
    // reporting; physically each owner holds its share (they are summed
    // here because the loop above already runs at the orchestrator level).

    // Step 5: cluster edges. Machines look up (σ, deg) for their endpoints.
    let sigma_of_endpoints = lookup(cluster, "cg.sigma", &sigma, &requests, &owners)?;
    let mut level_items: ShardedVec<(LevelEdgeKey, Edge)> = ShardedVec::new(cluster);
    for mid in 0..cluster.machines() {
        let info: std::collections::HashMap<VertexId, (VertexId, u32)> =
            sigma_of_endpoints.shard(mid).iter().copied().collect();
        let shard = level_items.shard_mut(mid);
        for e in edges.shard(mid) {
            let (su, du) = info[&e.u];
            let (sv, dv) = info[&e.v];
            if su == sv {
                continue;
            }
            let level = edge_level(du, dv, levels);
            shard.push((level_edge_key(level, su, sv), *e));
        }
    }
    let cluster_edges =
        aggregate_by_key(cluster, "cg.level-edges", &level_items, &owners, |a, b| {
            (*a).min(*b)
        })?;
    let mut level_edge_counts = vec![0usize; levels];
    for (_mid, (key, _)) in cluster_edges.iter() {
        level_edge_counts[unpack_level_edge(key).0] += 1;
    }

    Ok(ClusteringGraphs {
        levels,
        star_edges,
        cluster_edges,
        sigma,
        level_edge_counts,
        level_vertex_counts: center_level_counts,
    })
}

/// Owners of the clustering structure (same as [`common::owners`]; re-export
/// for the orchestrator).
pub fn owners_of(cluster: &Cluster) -> Vec<MachineId> {
    common::owners(cluster)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_graph::generators;
    use mpc_runtime::ClusterConfig;

    fn build(g: &mpc_graph::Graph, seed: u64) -> (ClusteringGraphs, Cluster) {
        let mut cluster = Cluster::new(ClusterConfig::new(g.n(), g.m()).seed(seed));
        let input = common::distribute_edges(&cluster, g);
        let cg = build_clustering_graphs(&mut cluster, g.n(), &input).unwrap();
        (cg, cluster)
    }

    #[test]
    fn key_packing_roundtrips() {
        let k = level_edge_key(5, 70, 3);
        assert_eq!(unpack_level_edge(&k), (5, 3, 70));
    }

    #[test]
    fn every_edge_is_covered_by_star_or_cluster_edge() {
        // Lemma A.1 property 2: each edge lies in a star or yields a
        // cluster edge — equivalently (σ_u = σ_v) ∨ ((σ_u, σ_v) ∈ E_i).
        let g = generators::gnm(80, 400, 3);
        let (cg, cluster) = build(&g, 3);
        let mut sigma: std::collections::HashMap<VertexId, VertexId> =
            std::collections::HashMap::new();
        for (_m, (v, (s, _d))) in cg.sigma.iter() {
            sigma.insert(*v, *s);
        }
        let cluster_pairs: std::collections::HashSet<(VertexId, VertexId)> = cg
            .cluster_edges
            .iter()
            .map(|(_m, (k, _))| {
                let (_, a, b) = unpack_level_edge(k);
                (a, b)
            })
            .collect();
        for e in g.edges() {
            let su = sigma[&e.u];
            let sv = sigma[&e.v];
            if su == sv {
                continue; // same star
            }
            let pair = (su.min(sv), su.max(sv));
            assert!(
                cluster_pairs.contains(&pair),
                "edge {e:?} not represented: sigma=({su},{sv})"
            );
        }
        drop(cluster);
    }

    #[test]
    fn sigma_is_self_or_neighbor() {
        let g = generators::gnm(60, 240, 5);
        let (cg, _cluster) = build(&g, 5);
        let adj = g.adjacency();
        for (_m, (v, (s, _))) in cg.sigma.iter() {
            if v != s {
                assert!(
                    adj.neighbors(*v).iter().any(|&(u, _)| u == *s),
                    "sigma({v}) = {s} is not a neighbor"
                );
            }
        }
    }

    #[test]
    fn witness_edges_connect_the_right_clusters() {
        let g = generators::gnm(70, 300, 7);
        let (cg, _cluster) = build(&g, 7);
        let mut sigma: std::collections::HashMap<VertexId, VertexId> =
            std::collections::HashMap::new();
        for (_m, (v, (s, _d))) in cg.sigma.iter() {
            sigma.insert(*v, *s);
        }
        for (_m, (key, orig)) in cg.cluster_edges.iter() {
            let (_lvl, a, b) = unpack_level_edge(key);
            let (su, sv) = (sigma[&orig.u], sigma[&orig.v]);
            assert_eq!(
                (su.min(sv), su.max(sv)),
                (a, b),
                "witness {orig:?} does not connect clusters {a},{b}"
            );
        }
    }

    #[test]
    fn level_sizes_decrease_in_center_count() {
        // |V_i| should broadly shrink with i (hitting sets get sparser).
        let g = generators::gnm(200, 3000, 11);
        let (cg, _cluster) = build(&g, 11);
        assert!(cg.levels >= 3);
        let first = cg.level_vertex_counts[0].max(1);
        let last = *cg.level_vertex_counts.last().unwrap();
        assert!(last <= first);
    }
}
