//! Heterogeneous-MPC algorithms from Fischer, Horowitz & Oshman,
//! *Massively Parallel Computation in a Heterogeneous Regime* (PODC 2022).
//!
//! The model (one near-linear *large* machine + many sublinear *small*
//! machines) and its round/communication accounting live in `mpc-runtime`;
//! this crate implements the paper's algorithms on top of it:
//!
//! | Paper | Module | Result |
//! |---|---|---|
//! | §3, Thm 3.1 | [`mst`] | exact MST in `O(log log(m/n))` rounds (general `f(n)` version included) |
//! | §4, Thm 4.1, Cor 4.2, App A | [`spanner`] | `O(k)`-spanner of size `O(n^(1+1/k))` in `O(1)` rounds; `O(log n)`-approx APSP |
//! | §5, Thm 5.1, Thm 5.5 | [`matching`] | maximal matching in rounds depending only on the *average* degree; `O(1/f)`-round filtering variant |
//! | App C.1–C.5 | [`ported`] | `O(1)`-round connectivity / (1+ε)-MST / min-cuts / (Δ+1)-coloring, `O(log log Δ)` MIS |
//!
//! Every algorithm takes a [`mpc_runtime::Cluster`] plus the sharded input
//! edges, runs under strict capacity enforcement, and returns its result
//! together with the measured round count (via `cluster.rounds()`).
//!
//! # Example: exact MST on a heterogeneous cluster
//!
//! ```
//! use mpc_core::{common, mst};
//! use mpc_graph::{generators, mst::kruskal};
//! use mpc_runtime::{Cluster, ClusterConfig};
//!
//! let g = generators::gnm(128, 1024, 7).with_random_weights(10_000, 7);
//! let mut cluster = Cluster::new(ClusterConfig::new(g.n(), g.m()).seed(7));
//! let input = common::distribute_edges(&cluster, &g);
//! let result = mst::heterogeneous_mst(&mut cluster, g.n(), input).unwrap();
//! assert_eq!(result.forest.total_weight, kruskal(&g).total_weight);
//! println!("MST found in {} rounds", cluster.rounds());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod common;
pub mod matching;
pub mod mst;
pub mod ported;
pub mod spanner;
