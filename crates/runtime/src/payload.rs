//! Message payloads and the word-size accounting they carry.
//!
//! One *word* is `Θ(log n)` bits (the unit in which the paper states all
//! memory and communication bounds). Every message type implements
//! [`Payload`], whose [`words`](Payload::words) method is what the
//! [`Cluster`](crate::Cluster) charges against per-round capacities.
//!
//! Sizing conventions:
//!
//! * scalar ids/weights/counters: 1 word;
//! * an [`Edge`]: 2 words (packed endpoint pair + weight), matching the
//!   paper's convention that an edge with its `O(log n)`-bit weight is `O(1)`
//!   words;
//! * a `Vec<T>`: the sum of its elements (framing overhead is ignored — it
//!   only helps the adversary);
//! * flow labels and sketches: their explicit `words()` implementations in
//!   `mpc-labeling` / `mpc-sketch` wrappers.

use mpc_graph::{Edge, WeightKey};

/// Index of a machine in the cluster, `0..K`.
///
/// By convention the large machine (if any) is machine `0`.
pub type MachineId = usize;

/// A message payload with a well-defined size in machine words.
pub trait Payload: Clone {
    /// Size of this value in `Θ(log n)`-bit machine words.
    fn words(&self) -> usize;
}

macro_rules! scalar_payload {
    ($($t:ty),*) => {
        $(impl Payload for $t {
            fn words(&self) -> usize { 1 }
        })*
    };
}

scalar_payload!(u8, u16, u32, u64, usize, i32, i64, bool);

impl Payload for () {
    fn words(&self) -> usize {
        0
    }
}

impl Payload for Edge {
    fn words(&self) -> usize {
        2
    }
}

impl Payload for WeightKey {
    fn words(&self) -> usize {
        2
    }
}

impl<A: Payload, B: Payload> Payload for (A, B) {
    fn words(&self) -> usize {
        self.0.words() + self.1.words()
    }
}

impl<A: Payload, B: Payload, C: Payload> Payload for (A, B, C) {
    fn words(&self) -> usize {
        self.0.words() + self.1.words() + self.2.words()
    }
}

impl<A: Payload, B: Payload, C: Payload, D: Payload> Payload for (A, B, C, D) {
    fn words(&self) -> usize {
        self.0.words() + self.1.words() + self.2.words() + self.3.words()
    }
}

impl<T: Payload> Payload for Option<T> {
    fn words(&self) -> usize {
        self.as_ref().map_or(1, |t| t.words())
    }
}

impl<T: Payload> Payload for Vec<T> {
    fn words(&self) -> usize {
        self.iter().map(Payload::words).sum()
    }
}

/// Total word size of a slice of payloads.
pub fn words_of<T: Payload>(items: &[T]) -> usize {
    items.iter().map(Payload::words).sum()
}

/// An edge tagged with the original-graph edge it represents.
///
/// The MST algorithm (§3) contracts the graph repeatedly; every contracted
/// edge carries the original edge it stands for, so the final MST can be
/// reported in terms of input edges. 4 words (two edges).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TaggedEdge {
    /// The edge in the current (contracted) graph.
    pub cur: Edge,
    /// The original input edge it represents.
    pub orig: Edge,
}

impl TaggedEdge {
    /// An original edge standing for itself.
    pub fn identity(e: Edge) -> Self {
        TaggedEdge { cur: e, orig: e }
    }
}

impl Payload for TaggedEdge {
    fn words(&self) -> usize {
        4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_and_composite_sizes() {
        assert_eq!(5u64.words(), 1);
        assert_eq!((3u32, 4u64).words(), 2);
        assert_eq!(Edge::new(0, 1, 9).words(), 2);
        assert_eq!(vec![Edge::new(0, 1, 9); 3].words(), 6);
        assert_eq!(Some(7u64).words(), 1);
        assert_eq!(TaggedEdge::identity(Edge::new(0, 1, 2)).words(), 4);
        assert_eq!(().words(), 0);
    }

    #[test]
    fn words_of_slice() {
        let v = [(1u64, 2u64), (3, 4)];
        assert_eq!(words_of(&v), 4);
    }
}
