//! Deterministic simulator for the (heterogeneous) MPC model of
//! Fischer, Horowitz & Oshman, *Massively Parallel Computation in a
//! Heterogeneous Regime* (PODC 2022).
//!
//! # The model (paper §2)
//!
//! * One **large** machine with `O(n^(1+f(n))·polylog n)` words of memory
//!   (`f = 0` is the paper's default near-linear setting) and
//!   `K = m/n^γ` **small** machines with `O(n^γ·polylog n)` words each.
//! * Computation proceeds in **synchronous rounds**; per round each machine
//!   sends and receives at most as many words as it can store.
//! * Local computation between rounds is free; every machine has private
//!   randomness.
//!
//! The simulator executes algorithms as sequences of [`Cluster::exchange`]
//! calls (one exchange = one round) and *measures* the quantities the paper
//! bounds: round count, per-round communication, and resident memory, all
//! checked against capacities under a configurable [`Enforcement`] mode.
//!
//! # Example
//!
//! ```
//! use mpc_runtime::{Cluster, ClusterConfig, Topology};
//!
//! // A heterogeneous cluster for a graph with n=256, m=2048, γ=0.66.
//! let cfg = ClusterConfig::new(256, 2048)
//!     .topology(Topology::Heterogeneous { gamma: 0.66, large_exponent: 1.0 });
//! let mut cluster = Cluster::new(cfg);
//! // Every small machine reports its id to the large machine (1 round):
//! let large = cluster.large().unwrap();
//! let mut out = cluster.empty_outboxes::<u64>();
//! for mid in cluster.small_ids() {
//!     out[mid].push((large, mid as u64));
//! }
//! let inboxes = cluster.exchange("report-ids", out).unwrap();
//! assert_eq!(inboxes[large].len(), cluster.machines() - 1);
//! assert_eq!(cluster.rounds(), 1);
//! ```
//!
//! Higher-level algorithms use the O(1)-round [`primitives`] (the paper's
//! Claims 1–4) instead of raw exchanges.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod config;
pub mod cost;
pub mod error;
pub mod fault;
pub mod label;
pub mod payload;
pub mod primitives;
pub mod sharded;
pub mod telemetry;

pub use cluster::{machine_rng, Cluster, RoundRecord, RoundSummary};
pub use config::{ClusterConfig, Enforcement, Topology};
pub use cost::CostModel;
pub use error::ModelViolation;
pub use fault::{Fault, FaultPlan, FiredFault, RecoveryPolicy, ReplicaChunk};
pub use label::RoundLabel;
pub use payload::{MachineId, Payload};
pub use sharded::ShardedVec;
pub use telemetry::{FanoutSink, JsonlSink, RingSink, TraceEvent, TraceSink};
