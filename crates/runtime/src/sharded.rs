//! [`ShardedVec`]: algorithm data distributed across machines.

use crate::cluster::Cluster;
use crate::error::ModelViolation;
use crate::payload::{MachineId, Payload};

/// A vector of items sharded across the cluster's machines.
///
/// `shards[mid]` is the data resident on machine `mid`. The struct is plain
/// data — all movement happens through [`Cluster::exchange`] or the
/// [`primitives`](crate::primitives) — but it knows how to *account* its
/// memory footprint against the cluster.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardedVec<T> {
    shards: Vec<Vec<T>>,
}

impl<T> ShardedVec<T> {
    /// Empty shards for every machine of `cluster`.
    pub fn new(cluster: &Cluster) -> Self {
        ShardedVec {
            shards: (0..cluster.machines()).map(|_| Vec::new()).collect(),
        }
    }

    /// Wraps pre-built shards (must have one entry per machine).
    pub fn from_shards(shards: Vec<Vec<T>>) -> Self {
        ShardedVec { shards }
    }

    /// Distributes `items` across the given machines (round-robin).
    pub fn scatter(
        cluster: &Cluster,
        items: impl IntoIterator<Item = T>,
        targets: &[MachineId],
    ) -> Self {
        assert!(
            !targets.is_empty(),
            "scatter needs at least one target machine"
        );
        let mut sv = ShardedVec::new(cluster);
        for (i, item) in items.into_iter().enumerate() {
            sv.shards[targets[i % targets.len()]].push(item);
        }
        sv
    }

    /// Number of machines.
    pub fn machines(&self) -> usize {
        self.shards.len()
    }

    /// The shard of machine `mid`.
    pub fn shard(&self, mid: MachineId) -> &[T] {
        &self.shards[mid]
    }

    /// Mutable shard of machine `mid`.
    pub fn shard_mut(&mut self, mid: MachineId) -> &mut Vec<T> {
        &mut self.shards[mid]
    }

    /// Total item count across shards.
    pub fn total_len(&self) -> usize {
        self.shards.iter().map(Vec::len).sum()
    }

    /// Iterates `(machine, &item)` over all shards in machine order.
    pub fn iter(&self) -> impl Iterator<Item = (MachineId, &T)> {
        self.shards
            .iter()
            .enumerate()
            .flat_map(|(mid, shard)| shard.iter().map(move |t| (mid, t)))
    }

    /// Flattens all shards into one vector (machine order).
    pub fn into_flat(self) -> Vec<T> {
        self.shards.into_iter().flatten().collect()
    }

    /// Largest shard size (balance diagnostics).
    pub fn max_shard_len(&self) -> usize {
        self.shards.iter().map(Vec::len).max().unwrap_or(0)
    }
}

impl<T: Payload> ShardedVec<T> {
    /// Declares this structure's per-machine footprint under `slot`.
    ///
    /// # Errors
    ///
    /// Propagates [`ModelViolation::MemoryOverflow`] in strict mode.
    pub fn account(&self, cluster: &mut Cluster, slot: &str) -> Result<(), ModelViolation> {
        for (mid, shard) in self.shards.iter().enumerate() {
            let words: usize = shard.iter().map(Payload::words).sum();
            cluster.account(slot, mid, words)?;
        }
        Ok(())
    }
}

impl<T> std::ops::Index<MachineId> for ShardedVec<T> {
    type Output = Vec<T>;
    fn index(&self, mid: MachineId) -> &Vec<T> {
        &self.shards[mid]
    }
}

impl<T> std::ops::IndexMut<MachineId> for ShardedVec<T> {
    fn index_mut(&mut self, mid: MachineId) -> &mut Vec<T> {
        &mut self.shards[mid]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ClusterConfig, Topology};

    fn cluster() -> Cluster {
        Cluster::new(ClusterConfig::new(16, 64).topology(Topology::Custom {
            capacities: vec![1000, 50, 50, 50],
            large: Some(0),
        }))
    }

    #[test]
    fn scatter_round_robin_over_small_machines() {
        let c = cluster();
        let sv = ShardedVec::scatter(&c, 0u64..10, &c.small_ids());
        assert_eq!(sv.total_len(), 10);
        assert!(sv.shard(0).is_empty()); // large machine got nothing
        assert_eq!(sv.shard(1).len(), 4);
        assert_eq!(sv.shard(2).len(), 3);
        assert_eq!(sv.max_shard_len(), 4);
    }

    #[test]
    fn account_checks_capacity() {
        let mut c = cluster();
        let mut sv: ShardedVec<u64> = ShardedVec::new(&c);
        sv.shard_mut(1).extend(0..40);
        assert!(sv.account(&mut c, "data").is_ok());
        sv.shard_mut(1).extend(0..20); // 60 > 50
        assert!(sv.account(&mut c, "data").is_err());
    }

    #[test]
    fn iter_and_flatten_preserve_machine_order() {
        let c = cluster();
        let mut sv: ShardedVec<u64> = ShardedVec::new(&c);
        sv[2].push(5);
        sv[1].push(3);
        let pairs: Vec<(usize, u64)> = sv.iter().map(|(m, &x)| (m, x)).collect();
        assert_eq!(pairs, vec![(1, 3), (2, 5)]);
        assert_eq!(sv.into_flat(), vec![3, 5]);
    }
}
