//! The [`Cluster`]: machines, rounds, and resource accounting.

use crate::config::{ClusterConfig, Enforcement};
use crate::cost::CostModel;
use crate::error::ModelViolation;
use crate::fault::{Fault, FaultPlan, FiredFault};
use crate::label::RoundLabel;
use crate::payload::{MachineId, Payload};
use crate::telemetry::{TraceEvent, TraceSink};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Per-round accounting record (one entry per [`Cluster::exchange`]).
#[derive(Clone, Debug, PartialEq)]
pub struct RoundRecord {
    /// Label supplied by the algorithm (e.g. `"mst.collect-lightest"`,
    /// or an interned prefix + round counter on the engine's hot path).
    pub label: RoundLabel,
    /// Maximum words sent by any single machine this round.
    pub max_sent: usize,
    /// Maximum words received by any single machine this round.
    pub max_recv: usize,
    /// Total words moved this round.
    pub total_words: usize,
    /// Total number of messages this round.
    pub messages: usize,
    /// Local-computation words charged via [`Cluster::charge_work`] since
    /// the previous round, summed over machines.
    pub total_work: u64,
    /// Simulated duration of the round under the cluster's
    /// [`CostModel`]: the barrier waits for the slowest machine.
    pub makespan: f64,
}

/// One row of [`Cluster::round_summary`]: rounds, traffic, and simulated
/// time attributed to one exchange-label group (the label's first
/// dot-separated component, e.g. every `mst.kkt.*` exchange under `mst`).
#[derive(Clone, Debug, PartialEq)]
pub struct RoundSummary {
    /// The label group (first dot-separated component of the round label).
    pub label: String,
    /// Number of exchange rounds attributed to this group.
    pub rounds: u64,
    /// Total words moved by this group's rounds.
    pub total_words: usize,
    /// Summed simulated makespan of this group's rounds (seconds).
    pub makespan: f64,
}

/// The cluster's trace-sink slot, newtype-wrapped so [`Cluster`] can keep
/// its `Debug` derive without requiring `Debug` of every sink.
struct SinkSlot(Option<Arc<dyn TraceSink>>);

impl std::fmt::Debug for SinkSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.0 {
            Some(_) => f.write_str("Some(<dyn TraceSink>)"),
            None => f.write_str("None"),
        }
    }
}

/// A simulated MPC cluster (paper §2).
///
/// The cluster holds no algorithm state; algorithms keep their data in
/// [`ShardedVec`](crate::ShardedVec)s aligned with machine ids and move it
/// with [`exchange`](Cluster::exchange) (or the [`primitives`](crate::primitives)).
/// The cluster's job is accounting: rounds, per-round communication, and
/// declared resident memory, all checked against capacities.
///
/// Machine `0` is the large machine in heterogeneous topologies.
#[derive(Debug)]
pub struct Cluster {
    caps: Vec<usize>,
    /// Combined-round capacity multiplier (see
    /// [`set_capacity_factor`](Cluster::set_capacity_factor)); 1 outside
    /// multiplexed runs.
    cap_factor: usize,
    large: Option<MachineId>,
    rngs: Vec<SmallRng>,
    rounds: u64,
    enforcement: Enforcement,
    log: Vec<RoundRecord>,
    violations: Vec<ModelViolation>,
    /// slot name -> per-machine resident words.
    memory_slots: BTreeMap<String, Vec<usize>>,
    peak_resident: Vec<usize>,
    config: ClusterConfig,
    cost: CostModel,
    /// Local-computation words charged since the last exchange.
    pending_work: Vec<u64>,
    /// Per-round scratch (words sent per machine), reused across exchanges
    /// so the round hot path allocates nothing.
    sent_scratch: Vec<usize>,
    /// Per-round scratch: words addressed to each machine.
    recv_scratch: Vec<usize>,
    /// Per-round scratch: message count per destination, used to pre-size
    /// inboxes before delivery.
    inbox_counts: Vec<usize>,
    /// Telemetry sink; `None` keeps the exchange hot path allocation-free
    /// (one branch per round is the whole cost of the feature when off).
    sink: SinkSlot,
    /// Label of the most recent exchange — attributes between-round memory
    /// violations to the exchange that preceded them.
    last_label: RoundLabel,
    /// Scheduled fault injection; `None` keeps the exchange hot path on
    /// the zero-overhead fault-free branch (same contract as the sink).
    fault_plan: Option<FaultPlan>,
    /// Whether the *next* exchange is fault-eligible for crash/drop faults
    /// (set by the driver around algorithm exchanges; recovery
    /// infrastructure runs disarmed).
    armed: bool,
    /// Faults fired since the last [`take_fired_faults`]
    /// (Cluster::take_fired_faults) — the driver's recovery work queue.
    fired: Vec<FiredFault>,
    /// Simulated seconds (retry backoff) charged to the next exchange's
    /// makespan.
    pending_delay: f64,
}

/// The per-machine private RNG stream for machine `mid` under master seed
/// `seed` — the exact derivation [`Cluster::new`] uses, exposed so a
/// scheduler can mint a *detached* stream (e.g. one per admitted job) that
/// is bit-identical to the stream a fresh cluster seeded with `seed` would
/// hand that machine. Two jobs with different seeds get independent
/// streams; a job replayed solo on a cluster seeded with its job seed
/// draws the very same values.
pub fn machine_rng(seed: u64, mid: MachineId) -> SmallRng {
    SmallRng::seed_from_u64(
        seed.wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add((mid as u64).wrapping_mul(0xbf58_476d_1ce4_e5b9)),
    )
}

impl Cluster {
    /// Builds a cluster from a configuration.
    pub fn new(config: ClusterConfig) -> Self {
        let (caps, large) = config.resolve();
        let k = caps.len();
        let rngs = (0..k).map(|i| machine_rng(config.seed, i)).collect();
        Cluster {
            peak_resident: vec![0; k],
            cost: CostModel::uniform(k, 1.0, 1.0, 0.0),
            pending_work: vec![0; k],
            sent_scratch: vec![0; k],
            recv_scratch: vec![0; k],
            inbox_counts: vec![0; k],
            caps,
            cap_factor: 1,
            large,
            rngs,
            rounds: 0,
            enforcement: config.enforcement,
            log: Vec::new(),
            violations: Vec::new(),
            memory_slots: BTreeMap::new(),
            config,
            sink: SinkSlot(None),
            last_label: RoundLabel::new("init"),
            fault_plan: None,
            armed: false,
            fired: Vec::new(),
            pending_delay: 0.0,
        }
    }

    /// Attaches (or, with `None`, detaches) a fault plan and returns the
    /// previous one. With a plan attached, every exchange checks the
    /// schedule and fires due faults; with no plan the hot path pays one
    /// branch per exchange (the zero-overhead guarantee DESIGN.md §2.7
    /// leans on).
    pub fn set_fault_plan(&mut self, plan: Option<FaultPlan>) -> Option<FaultPlan> {
        std::mem::replace(&mut self.fault_plan, plan)
    }

    /// The attached fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault_plan.as_ref()
    }

    /// Marks the next exchange(s) fault-eligible (`true`) or protected
    /// (`false`) for crash/drop faults. Protected exchanges defer those
    /// faults instead of firing them — the driver protects setup and
    /// recovery-infrastructure exchanges so a crash always lands on a
    /// recoverable algorithm round. Delay/slowdown faults ignore arming.
    pub fn arm_faults(&mut self, armed: bool) {
        self.armed = armed;
    }

    /// Crash/drop faults that would fire on the next exchange *if it were
    /// armed* — the driver peeks this before an algorithm exchange to
    /// capture the mail it would lose.
    pub fn imminent_armed_faults(&self) -> Vec<Fault> {
        match &self.fault_plan {
            Some(plan) => plan
                .due(self.rounds + 1, true)
                .into_iter()
                .filter(Fault::needs_arming)
                .collect(),
            None => Vec::new(),
        }
    }

    /// Drains the faults fired since the last call (the driver's recovery
    /// work queue).
    pub fn take_fired_faults(&mut self) -> Vec<FiredFault> {
        std::mem::take(&mut self.fired)
    }

    /// Charges `seconds` of simulated stall (retry backoff) to the next
    /// exchange's makespan. Only takes effect while a fault plan is
    /// attached.
    pub fn add_pending_delay(&mut self, seconds: f64) {
        assert!(seconds >= 0.0, "delay cannot be negative");
        self.pending_delay += seconds;
    }

    /// Quarantines machine `mid` in the cost model (its seconds drop out
    /// of the barrier max until [`restore_machine`](Cluster::restore_machine)).
    pub fn quarantine_machine(&mut self, mid: MachineId) {
        self.cost.quarantine(mid);
    }

    /// Lifts a cost-model quarantine after recovery.
    pub fn restore_machine(&mut self, mid: MachineId) {
        self.cost.restore(mid);
    }

    /// Attaches (or, with `None`, detaches) a telemetry sink and returns
    /// the previous one, so a scoped consumer (e.g. a report builder) can
    /// restore whatever was installed before it.
    ///
    /// With a sink attached, every [`exchange`](Cluster::exchange) emits
    /// [`TraceEvent::RoundBegin`], one [`TraceEvent::MachineRound`] per
    /// machine, and [`TraceEvent::RoundEnd`]; violations emit
    /// [`TraceEvent::Violation`] in every [`Enforcement`] mode that
    /// reports them. With no sink the hot path pays exactly one branch
    /// per exchange and allocates nothing extra.
    pub fn set_trace_sink(
        &mut self,
        sink: Option<Arc<dyn TraceSink>>,
    ) -> Option<Arc<dyn TraceSink>> {
        std::mem::replace(&mut self.sink.0, sink)
    }

    /// The currently attached telemetry sink, if any (cloned handle).
    pub fn trace_sink(&self) -> Option<Arc<dyn TraceSink>> {
        self.sink.0.clone()
    }

    /// Whether a telemetry sink is attached (the branch the hot path takes).
    pub fn tracing(&self) -> bool {
        self.sink.0.is_some()
    }

    /// Number of machines (including the large machine, if any).
    pub fn machines(&self) -> usize {
        self.caps.len()
    }

    /// The large machine's id, if the topology has one.
    pub fn large(&self) -> Option<MachineId> {
        self.large
    }

    /// Ids of all non-large machines, in ascending order.
    ///
    /// Allocates a fresh `Vec` on every call; hot paths that only iterate
    /// should prefer [`small_ids_iter`](Cluster::small_ids_iter).
    pub fn small_ids(&self) -> Vec<MachineId> {
        self.small_ids_iter().collect()
    }

    /// Iterator over all non-large machine ids, ascending — the
    /// allocation-free counterpart of [`small_ids`](Cluster::small_ids).
    pub fn small_ids_iter(&self) -> impl Iterator<Item = MachineId> + '_ {
        let large = self.large;
        (0..self.machines()).filter(move |&i| Some(i) != large)
    }

    /// Capacity of machine `mid` in words, scaled by the current
    /// [capacity factor](Cluster::set_capacity_factor).
    pub fn capacity(&self, mid: MachineId) -> usize {
        self.caps[mid].saturating_mul(self.cap_factor)
    }

    /// Scales every capacity check by `factor` — the multi-program
    /// scheduler's combined-round budget. When `N` independent program
    /// instances are interleaved into one bulk-synchronous run, a physical
    /// round carries the union of the live instances' traffic, and each
    /// instance legitimately commands its *own* per-round word budget (the
    /// paper's parallel composition gives every parallel instance its own
    /// `Õ(·)` memory; the instance count itself is a polylog quantity for
    /// the Theorem C.2 / C.4 grids). Callers set the factor to the instance
    /// count for the duration of a batched run and reset it to 1 afterward;
    /// per-*instance* decisions must use the unscaled solo capacity,
    /// snapshotted before the factor is applied.
    ///
    /// # Panics
    ///
    /// Panics on a zero factor.
    pub fn set_capacity_factor(&mut self, factor: usize) {
        assert!(factor > 0, "capacity factor must be at least 1");
        self.cap_factor = factor;
    }

    /// The current combined-round capacity multiplier.
    pub fn capacity_factor(&self) -> usize {
        self.cap_factor
    }

    /// The smallest capacity among non-large machines.
    pub fn min_small_capacity(&self) -> usize {
        self.small_ids_iter()
            .map(|i| self.capacity(i))
            .min()
            .unwrap_or(0)
    }

    /// Rounds elapsed so far.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// The configuration this cluster was built from.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// The per-machine private RNG (deterministic in the master seed).
    pub fn rng(&mut self, mid: MachineId) -> &mut SmallRng {
        &mut self.rngs[mid]
    }

    /// All per-machine RNGs at once, so an execution engine can step every
    /// machine concurrently while each machine still consumes exactly its
    /// own private stream (index `mid`).
    pub fn rngs_mut(&mut self) -> &mut [SmallRng] {
        &mut self.rngs
    }

    /// Replaces the cluster's [`CostModel`] (defaults to
    /// [`CostModel::uniform`] with unit rates and zero latency).
    ///
    /// # Panics
    ///
    /// Panics if the model covers a different number of machines.
    pub fn set_cost_model(&mut self, cost: CostModel) {
        assert_eq!(
            cost.machines(),
            self.machines(),
            "cost model machine count mismatch"
        );
        self.cost = cost;
    }

    /// The active cost model.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Charges `words` of local computation to machine `mid`; the next
    /// [`exchange`](Cluster::exchange) folds it into that round's makespan.
    /// "Free local computation" in the paper's sense still takes wall-clock
    /// time on a real machine — this is how an execution engine reports it.
    pub fn charge_work(&mut self, mid: MachineId, words: u64) {
        assert!(
            mid < self.machines(),
            "charge_work: machine {mid} out of range"
        );
        self.pending_work[mid] = self.pending_work[mid].saturating_add(words);
    }

    /// Total simulated execution time so far: the sum of per-round
    /// makespans (the critical path of the synchronous schedule).
    pub fn critical_path_seconds(&self) -> f64 {
        self.log.iter().map(|r| r.makespan).sum()
    }

    /// The full per-round log.
    pub fn round_log(&self) -> &[RoundRecord] {
        &self.log
    }

    /// Violations recorded so far (only populated in `Record` mode).
    pub fn violations(&self) -> &[ModelViolation] {
        &self.violations
    }

    /// Peak declared resident words per machine.
    pub fn peak_resident(&self) -> &[usize] {
        &self.peak_resident
    }

    /// Pre-sized outbox vector for [`exchange`](Cluster::exchange):
    /// one empty message list per machine.
    pub fn empty_outboxes<M: Payload>(&self) -> Vec<Vec<(MachineId, M)>> {
        (0..self.machines()).map(|_| Vec::new()).collect()
    }

    /// Emits a [`TraceEvent::Violation`] for `v` if a sink is attached.
    fn emit_violation(&self, v: &ModelViolation) {
        if let Some(sink) = &self.sink.0 {
            sink.record(&TraceEvent::Violation {
                round: v.round(),
                label: v.label().to_string(),
                kind: v.kind(),
                message: v.to_string(),
            });
        }
    }

    fn report(&mut self, v: ModelViolation) -> Result<(), ModelViolation> {
        self.emit_violation(&v);
        match self.enforcement {
            Enforcement::Strict => Err(v),
            Enforcement::Record => {
                self.violations.push(v);
                Ok(())
            }
            Enforcement::Off => Ok(()),
        }
    }

    /// Executes one synchronous round.
    ///
    /// `outgoing[src]` holds the messages machine `src` sends this round as
    /// `(destination, payload)` pairs. Returns `inboxes`, where
    /// `inboxes[dst]` lists `(source, payload)` pairs in deterministic order
    /// (ascending source id, then send order).
    ///
    /// Allocates the returned inboxes; round-loop hot paths that can hold
    /// onto buffers across rounds should use
    /// [`exchange_into`](Cluster::exchange_into) instead.
    ///
    /// # Errors
    ///
    /// In `Strict` mode, returns a [`ModelViolation`] if any machine sends or
    /// is addressed with more words than its capacity, or if a destination id
    /// is out of range (the latter errors in every mode).
    pub fn exchange<M: Payload>(
        &mut self,
        label: &str,
        mut outgoing: Vec<Vec<(MachineId, M)>>,
    ) -> Result<Vec<Vec<(MachineId, M)>>, ModelViolation> {
        let mut inboxes = Vec::new();
        self.exchange_into(RoundLabel::new(label), &mut outgoing, &mut inboxes)?;
        Ok(inboxes)
    }

    /// [`exchange`](Cluster::exchange) with caller-owned buffers: the
    /// engine's zero-allocation round path.
    ///
    /// Drains `outgoing` into `inboxes` (cleared and pre-sized from the
    /// counting pass; spare capacity is retained). Holding both buffer sets
    /// across rounds makes the steady-state exchange allocation-free apart
    /// from inbox growth on the first rounds.
    ///
    /// # Errors
    ///
    /// See [`exchange`](Cluster::exchange). On error `outgoing` is left
    /// undrained and `inboxes` is left untouched — a buffer-reusing caller
    /// must treat its contents (stale messages from the previous round) as
    /// garbage and abort or clear.
    ///
    /// # Panics
    ///
    /// Panics if `outgoing` does not have one entry per machine.
    pub fn exchange_into<M: Payload>(
        &mut self,
        label: RoundLabel,
        outgoing: &mut [Vec<(MachineId, M)>],
        inboxes: &mut Vec<Vec<(MachineId, M)>>,
    ) -> Result<(), ModelViolation> {
        assert_eq!(
            outgoing.len(),
            self.machines(),
            "outgoing must have one entry per machine (use empty_outboxes)"
        );
        let k = self.machines();
        self.rounds += 1;
        let round = self.rounds;
        // A RoundLabel clone is an Arc refcount bump — cheap enough to pay
        // unconditionally so Record-mode memory violations can name the
        // exchange they follow even with no sink attached.
        self.last_label = label.clone();
        if let Some(sink) = &self.sink.0 {
            sink.record(&TraceEvent::RoundBegin {
                round,
                label: label.to_string(),
            });
        }
        self.sent_scratch.fill(0);
        self.recv_scratch.fill(0);
        self.inbox_counts.fill(0);
        let mut messages = 0usize;
        for (src, msgs) in outgoing.iter().enumerate() {
            for (dst, m) in msgs {
                if *dst >= k {
                    let v = ModelViolation::UnknownMachine {
                        machine: *dst,
                        round,
                        label: label.to_string(),
                    };
                    self.emit_violation(&v);
                    return Err(v);
                }
                let w = m.words();
                self.sent_scratch[src] += w;
                self.recv_scratch[*dst] += w;
                self.inbox_counts[*dst] += 1;
                messages += 1;
            }
        }
        for mid in 0..k {
            let (sent, recv, cap) = (
                self.sent_scratch[mid],
                self.recv_scratch[mid],
                self.capacity(mid),
            );
            if sent > cap {
                self.report(ModelViolation::SendOverflow {
                    machine: mid,
                    round,
                    label: label.to_string(),
                    words: sent,
                    capacity: cap,
                })?;
            }
            if recv > cap {
                self.report(ModelViolation::RecvOverflow {
                    machine: mid,
                    round,
                    label: label.to_string(),
                    words: recv,
                    capacity: cap,
                })?;
            }
        }
        // Fault injection (one branch per round when no plan is attached).
        // Faults fire *after* the capacity checks — a crashing machine's
        // attempted traffic still had to fit the model — and *before* the
        // makespan, so a quarantined machine's seconds drop out of the
        // barrier max for the very round it dies in.
        let mut crashed: Vec<MachineId> = Vec::new();
        let mut dropped: Vec<MachineId> = Vec::new();
        let mut extra_delay = 0.0f64;
        if let Some(plan) = &mut self.fault_plan {
            extra_delay = std::mem::take(&mut self.pending_delay);
            let fired = plan.fire_due(round, self.armed);
            for ff in &fired {
                match &ff.fault {
                    Fault::Crash { machine, .. } => {
                        self.cost.quarantine(*machine);
                        crashed.push(*machine);
                    }
                    Fault::DropExchange { machine, .. } => dropped.push(*machine),
                    Fault::DelayRound { seconds, .. } => extra_delay += seconds,
                    Fault::Slowdown {
                        machine, factor, ..
                    } => self.cost.slow_down(*machine, *factor),
                }
                if let Some(sink) = &self.sink.0 {
                    sink.record(&TraceEvent::FaultInjected {
                        round,
                        kind: ff.fault.kind(),
                        detail: ff.fault.detail(),
                    });
                }
            }
            self.fired.extend(fired);
        }
        let mut makespan =
            self.cost
                .round_makespan(&self.sent_scratch, &self.recv_scratch, &self.pending_work);
        if self.fault_plan.is_some() {
            makespan += extra_delay;
        }
        if let Some(sink) = &self.sink.0 {
            for mid in 0..k {
                let (sent, recv, work) = (
                    self.sent_scratch[mid],
                    self.recv_scratch[mid],
                    self.pending_work[mid],
                );
                sink.record(&TraceEvent::MachineRound {
                    round,
                    machine: mid,
                    sent_words: sent,
                    recv_words: recv,
                    work,
                    seconds: self.cost.machine_round_seconds(mid, sent, recv, work),
                    capacity: self.capacity(mid),
                });
            }
            sink.record(&TraceEvent::RoundEnd {
                round,
                label: label.to_string(),
                total_words: self.sent_scratch.iter().sum(),
                messages,
                makespan,
            });
        }
        self.log.push(RoundRecord {
            label,
            max_sent: self.sent_scratch.iter().copied().max().unwrap_or(0),
            max_recv: self.recv_scratch.iter().copied().max().unwrap_or(0),
            total_words: self.sent_scratch.iter().sum(),
            messages,
            total_work: self.pending_work.iter().sum(),
            makespan,
        });
        self.pending_work.fill(0);
        // Deliver deterministically: ascending source, preserving send order.
        // Each inbox is pre-sized exactly, so the push loop never reallocates.
        inboxes.resize_with(k, Vec::new);
        for (dst, inbox) in inboxes.iter_mut().enumerate() {
            inbox.clear();
            inbox.reserve(self.inbox_counts[dst]);
        }
        if crashed.is_empty() && dropped.is_empty() {
            for (src, msgs) in outgoing.iter_mut().enumerate() {
                for (dst, m) in msgs.drain(..) {
                    inboxes[dst].push((src, m));
                }
            }
        } else {
            // A crash loses the machine's messages in both directions (its
            // inbox stays empty); a drop loses only its outbound mail.
            for (src, msgs) in outgoing.iter_mut().enumerate() {
                let src_lost = crashed.contains(&src) || dropped.contains(&src);
                for (dst, m) in msgs.drain(..) {
                    if src_lost || crashed.contains(&dst) {
                        continue;
                    }
                    inboxes[dst].push((src, m));
                }
            }
        }
        Ok(())
    }

    /// Declares the resident memory of machine `mid` under accounting slot
    /// `slot` (replacing the slot's previous value). A machine's resident
    /// total is the sum over all slots; the update is checked against the
    /// machine's capacity.
    ///
    /// The slot value is recorded (and counted toward the peak) *before*
    /// the capacity check — a failed `Strict` account therefore leaves the
    /// slot set, and the caller releases it like any other slot.
    ///
    /// # Errors
    ///
    /// In `Strict` mode, returns [`ModelViolation::MemoryOverflow`] if the
    /// machine's total resident memory now exceeds its capacity.
    pub fn account(
        &mut self,
        slot: &str,
        mid: MachineId,
        words: usize,
    ) -> Result<(), ModelViolation> {
        let k = self.machines();
        assert!(mid < k, "account: machine {mid} out of range");
        // Look up with the borrowed key first: repeated accounting into an
        // existing slot must not allocate a fresh `String` per call.
        match self.memory_slots.get_mut(slot) {
            Some(per_machine) => per_machine[mid] = words,
            None => {
                let mut per_machine = vec![0; k];
                per_machine[mid] = words;
                self.memory_slots.insert(slot.to_string(), per_machine);
            }
        }
        let total: usize = self.memory_slots.values().map(|v| v[mid]).sum();
        self.peak_resident[mid] = self.peak_resident[mid].max(total);
        if total > self.capacity(mid) {
            let round = self.rounds;
            let cap = self.capacity(mid);
            self.report(ModelViolation::MemoryOverflow {
                machine: mid,
                round,
                label: self.last_label.to_string(),
                slot: slot.to_string(),
                words: total,
                capacity: cap,
            })?;
        }
        Ok(())
    }

    /// Declares per-machine resident memory for a whole slot at once.
    ///
    /// # Errors
    ///
    /// See [`account`](Cluster::account).
    pub fn account_all(
        &mut self,
        slot: &str,
        words_per_machine: &[usize],
    ) -> Result<(), ModelViolation> {
        assert_eq!(words_per_machine.len(), self.machines());
        for (mid, &w) in words_per_machine.iter().enumerate() {
            self.account(slot, mid, w)?;
        }
        Ok(())
    }

    /// Clears an accounting slot (the data was dropped).
    pub fn release(&mut self, slot: &str) {
        self.memory_slots.remove(slot);
    }

    /// Current declared resident words of machine `mid`.
    pub fn resident(&self, mid: MachineId) -> usize {
        self.memory_slots.values().map(|v| v[mid]).sum()
    }

    /// Maximum words sent or received by any machine in any round so far.
    pub fn max_round_traffic(&self) -> usize {
        self.log
            .iter()
            .map(|r| r.max_sent.max(r.max_recv))
            .max()
            .unwrap_or(0)
    }

    /// Attributes rounds, traffic, and simulated time to algorithm steps:
    /// groups the round log by the label's first dot-separated component
    /// (e.g. every `mst.kkt.*` exchange under `mst`), returning one
    /// [`RoundSummary`] per group, sorted by round count descending.
    ///
    /// Useful for answering "where did my rounds (and my wall-clock) go?"
    /// in experiments.
    pub fn round_summary(&self) -> Vec<RoundSummary> {
        let mut acc: std::collections::BTreeMap<String, (u64, usize, f64)> =
            std::collections::BTreeMap::new();
        for rec in &self.log {
            let e = acc.entry(rec.label.group().to_string()).or_default();
            e.0 += 1;
            e.1 += rec.total_words;
            e.2 += rec.makespan;
        }
        let mut v: Vec<RoundSummary> = acc
            .into_iter()
            .map(|(label, (rounds, total_words, makespan))| RoundSummary {
                label,
                rounds,
                total_words,
                makespan,
            })
            .collect();
        v.sort_by_key(|s| std::cmp::Reverse(s.rounds));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Topology;

    fn tiny() -> Cluster {
        Cluster::new(ClusterConfig::new(16, 64).topology(Topology::Custom {
            capacities: vec![100, 20, 20],
            large: Some(0),
        }))
    }

    #[test]
    fn exchange_counts_rounds_and_delivers_in_order() {
        let mut c = tiny();
        let mut out = c.empty_outboxes::<u64>();
        out[1].push((0, 11));
        out[2].push((0, 22));
        out[2].push((1, 33));
        let inboxes = c.exchange("t", out).unwrap();
        assert_eq!(c.rounds(), 1);
        assert_eq!(inboxes[0], vec![(1, 11), (2, 22)]);
        assert_eq!(inboxes[1], vec![(2, 33)]);
        assert!(inboxes[2].is_empty());
        let rec = &c.round_log()[0];
        assert_eq!(rec.total_words, 3);
        assert_eq!(rec.messages, 3);
        assert_eq!(rec.max_sent, 2);
    }

    #[test]
    fn send_overflow_is_strict_error() {
        let mut c = tiny();
        let mut out = c.empty_outboxes::<u64>();
        for _ in 0..25 {
            out[1].push((0, 7)); // 25 words > capacity 20 of machine 1
        }
        let err = c.exchange("overflow", out).unwrap_err();
        assert!(matches!(
            err,
            ModelViolation::SendOverflow { machine: 1, .. }
        ));
    }

    #[test]
    fn recv_overflow_detected() {
        let mut c = tiny();
        let mut out = c.empty_outboxes::<u64>();
        for _ in 0..25 {
            out[0].push((2, 7)); // large can send 25, but machine 2 can't hold it
        }
        let err = c.exchange("overflow", out).unwrap_err();
        assert!(matches!(
            err,
            ModelViolation::RecvOverflow { machine: 2, .. }
        ));
    }

    #[test]
    fn record_mode_logs_instead_of_failing() {
        let cfg = ClusterConfig::new(16, 64)
            .topology(Topology::Custom {
                capacities: vec![5, 5],
                large: None,
            })
            .enforcement(Enforcement::Record);
        let mut c = Cluster::new(cfg);
        let mut out = c.empty_outboxes::<u64>();
        for _ in 0..9 {
            out[0].push((1, 1));
        }
        c.exchange("spam", out).unwrap();
        assert_eq!(c.violations().len(), 2); // send + recv overflow
    }

    #[test]
    fn memory_slots_sum_and_release() {
        let mut c = tiny();
        c.account("edges", 1, 12).unwrap();
        c.account("labels", 1, 6).unwrap();
        assert_eq!(c.resident(1), 18);
        assert!(c.account("more", 1, 10).is_err()); // 28 > 20
                                                    // `account` records the slot value *before* the capacity check, so
                                                    // a failed Strict account leaves the slot set: the 10 words of
                                                    // "more" are resident (and count toward the peak) until released.
        assert_eq!(c.resident(1), 28);
        assert_eq!(c.peak_resident()[1], 28);
        c.release("labels");
        c.release("more");
        assert_eq!(c.resident(1), 12);
    }

    #[test]
    fn capacity_factor_scales_the_checks_and_resets() {
        let mut c = tiny();
        let mut out = c.empty_outboxes::<u64>();
        for _ in 0..25 {
            out[1].push((0, 7)); // 25 words > solo capacity 20 of machine 1
        }
        // Under a 2× combined-round budget the same volume is legal.
        c.set_capacity_factor(2);
        assert_eq!(c.capacity(1), 40);
        c.exchange("mux", out).unwrap();
        // Reset: the solo budget is enforced again.
        c.set_capacity_factor(1);
        let mut out = c.empty_outboxes::<u64>();
        for _ in 0..25 {
            out[1].push((0, 7));
        }
        assert!(matches!(
            c.exchange("solo", out),
            Err(ModelViolation::SendOverflow { machine: 1, .. })
        ));
    }

    #[test]
    fn unknown_machine_is_error_in_all_modes() {
        let cfg = ClusterConfig::new(16, 64)
            .topology(Topology::Custom {
                capacities: vec![5, 5],
                large: None,
            })
            .enforcement(Enforcement::Off);
        let mut c = Cluster::new(cfg);
        let mut out = c.empty_outboxes::<u64>();
        out[0].push((9, 1));
        assert!(matches!(
            c.exchange("bad", out),
            Err(ModelViolation::UnknownMachine { machine: 9, .. })
        ));
    }

    #[test]
    fn rngs_are_deterministic_and_distinct() {
        use rand::RngCore;
        let mut a = tiny();
        let mut b = tiny();
        assert_eq!(a.rng(1).next_u64(), b.rng(1).next_u64());
        let x = a.rng(1).next_u64();
        let y = a.rng(2).next_u64();
        assert_ne!(x, y);
    }

    #[test]
    fn round_summary_groups_by_label_prefix() {
        let mut c = tiny();
        for label in ["mst.sort", "mst.collect", "spanner.hist"] {
            let mut out = c.empty_outboxes::<u64>();
            out[1].push((0, 1));
            c.exchange(label, out).unwrap();
        }
        let summary = c.round_summary();
        assert_eq!(summary.len(), 2);
        let mst = summary.iter().find(|s| s.label == "mst").unwrap();
        assert_eq!(mst.rounds, 2);
        assert_eq!(mst.total_words, 2);
        // Unit-rate default cost model: each round's makespan equals its
        // bottleneck word count (1 word sent or received per round here).
        assert!((mst.makespan - 2.0).abs() < 1e-9);
    }

    #[test]
    fn trace_sink_sees_round_machine_and_violation_events() {
        use crate::telemetry::{RingSink, TraceEvent};

        let cfg = ClusterConfig::new(16, 64)
            .topology(Topology::Custom {
                capacities: vec![100, 20, 20],
                large: Some(0),
            })
            .enforcement(Enforcement::Record);
        let mut c = Cluster::new(cfg);
        let ring = std::sync::Arc::new(RingSink::unbounded());
        assert!(!c.tracing());
        assert!(c.set_trace_sink(Some(ring.clone())).is_none());
        assert!(c.tracing());

        c.charge_work(1, 8);
        let mut out = c.empty_outboxes::<u64>();
        for _ in 0..25 {
            out[1].push((0, 7)); // 25 > capacity 20: Record-mode violation
        }
        c.exchange("trace.r000", out).unwrap();

        let events = ring.events();
        // RoundBegin + one MachineRound per machine + Violation + RoundEnd.
        assert!(matches!(
            &events[0],
            TraceEvent::RoundBegin { round: 1, label } if label == "trace.r000"
        ));
        let machine_rounds: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::MachineRound {
                    machine,
                    sent_words,
                    work,
                    capacity,
                    ..
                } => Some((*machine, *sent_words, *work, *capacity)),
                _ => None,
            })
            .collect();
        assert_eq!(machine_rounds.len(), 3);
        assert_eq!(machine_rounds[1], (1, 25, 8, 20));
        assert!(events.iter().any(|e| matches!(
            e,
            TraceEvent::Violation {
                kind: "send_overflow",
                round: 1,
                ..
            }
        )));
        let rec = &c.round_log()[0];
        assert!(events.iter().any(|e| matches!(
            e,
            TraceEvent::RoundEnd { round: 1, total_words, makespan, .. }
                if *total_words == rec.total_words && *makespan == rec.makespan
        )));

        // Detaching returns the sink and stops emission.
        let prev = c.set_trace_sink(None);
        assert!(prev.is_some());
        let n = ring.len();
        let out = c.empty_outboxes::<u64>();
        c.exchange("silent", out).unwrap();
        assert_eq!(ring.len(), n);
    }

    #[test]
    fn memory_violation_names_the_preceding_exchange() {
        let cfg = ClusterConfig::new(16, 64)
            .topology(Topology::Custom {
                capacities: vec![100, 20, 20],
                large: Some(0),
            })
            .enforcement(Enforcement::Record);
        let mut c = Cluster::new(cfg);
        let out = c.empty_outboxes::<u64>();
        c.exchange("setup.shuffle", out).unwrap();
        c.account("edges", 1, 50).unwrap();
        let v = &c.violations()[0];
        assert_eq!(v.kind(), "memory_overflow");
        assert_eq!(v.round(), 1);
        assert_eq!(v.label(), "setup.shuffle");
    }

    #[test]
    fn charged_work_flows_into_makespan_and_resets() {
        let mut c = tiny();
        c.set_cost_model(crate::cost::CostModel::uniform(3, 2.0, 1.0, 0.0));
        c.charge_work(1, 10); // 10 words at speed 2 => 5 seconds
        let out = c.empty_outboxes::<u64>();
        c.exchange("work", out).unwrap();
        let rec = &c.round_log()[0];
        assert_eq!(rec.total_work, 10);
        assert!((rec.makespan - 5.0).abs() < 1e-9);
        // Pending work was consumed by the exchange.
        let out = c.empty_outboxes::<u64>();
        c.exchange("idle", out).unwrap();
        assert_eq!(c.round_log()[1].total_work, 0);
        assert!((c.critical_path_seconds() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn straggler_cost_model_stretches_rounds() {
        let mut c = tiny();
        let uniform_span = {
            let mut out = c.empty_outboxes::<u64>();
            out[1].push((0, 1));
            out[1].push((0, 2));
            c.exchange("t", out).unwrap();
            c.round_log()[0].makespan
        };
        let mut s = tiny();
        s.set_cost_model(crate::cost::CostModel::uniform(3, 1.0, 1.0, 0.0).with_straggler(1, 0.1));
        let mut out = s.empty_outboxes::<u64>();
        out[1].push((0, 1));
        out[1].push((0, 2));
        s.exchange("t", out).unwrap();
        assert!(s.round_log()[0].makespan > 9.0 * uniform_span);
    }

    #[test]
    fn small_ids_excludes_large() {
        let c = tiny();
        assert_eq!(c.small_ids(), vec![1, 2]);
        assert_eq!(c.small_ids_iter().collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(c.large(), Some(0));
        assert_eq!(c.min_small_capacity(), 20);
    }

    #[test]
    fn exchange_into_reuses_buffers_and_matches_exchange() {
        use crate::label::RoundLabel;
        use std::sync::Arc;

        // Reference: the allocating API.
        let mut a = tiny();
        let mut out = a.empty_outboxes::<u64>();
        out[1].push((0, 11));
        out[2].push((0, 22));
        out[2].push((1, 33));
        let expect = a.exchange("x.r000", out).unwrap();

        // Same round through caller-owned buffers, twice, to exercise reuse.
        let mut b = tiny();
        let prefix: Arc<str> = Arc::from("x");
        let mut outgoing = b.empty_outboxes::<u64>();
        let mut inboxes: Vec<Vec<(MachineId, u64)>> = Vec::new();
        for round in 0..2u64 {
            outgoing[1].push((0, 11));
            outgoing[2].push((0, 22));
            outgoing[2].push((1, 33));
            b.exchange_into(
                RoundLabel::with_seq(&prefix, round),
                &mut outgoing,
                &mut inboxes,
            )
            .unwrap();
            assert_eq!(inboxes, expect, "round {round}");
            // Outboxes come back drained but usable for the next round.
            assert!(outgoing.iter().all(Vec::is_empty));
        }
        assert_eq!(b.rounds(), 2);
        assert_eq!(b.round_log()[0].label.to_string(), "x.r000");
        assert_eq!(
            b.round_log()[0].total_words,
            expect.iter().flatten().count()
        );
        // Accounting fields agree with the allocating path.
        assert_eq!(b.round_log()[0].max_sent, a.round_log()[0].max_sent);
        assert_eq!(b.round_log()[0].messages, a.round_log()[0].messages);
        assert!((b.round_log()[0].makespan - a.round_log()[0].makespan).abs() < 1e-12);
    }

    #[test]
    fn fault_free_runs_with_and_without_plan_slot_are_identical() {
        // No plan attached: behavior is byte-for-byte today's. A plan with
        // no due faults must also leave delivery and accounting untouched.
        let run = |plan: Option<crate::fault::FaultPlan>| {
            let mut c = tiny();
            c.set_fault_plan(plan);
            let mut out = c.empty_outboxes::<u64>();
            out[1].push((0, 11));
            out[2].push((1, 22));
            let inboxes = c.exchange("t", out).unwrap();
            (inboxes, c.round_log().to_vec())
        };
        let (base_in, base_log) = run(None);
        let plan = crate::fault::FaultPlan::new().with_fault(Fault::Crash {
            machine: 1,
            round: 99,
        });
        let (plan_in, plan_log) = run(Some(plan));
        assert_eq!(base_in, plan_in);
        assert_eq!(base_log, plan_log);
    }

    #[test]
    fn crash_fires_only_when_armed_and_empties_both_directions() {
        use crate::fault::{Fault, FaultPlan};
        let mut c = tiny();
        c.set_fault_plan(Some(FaultPlan::new().with_fault(Fault::Crash {
            machine: 1,
            round: 1,
        })));

        // Disarmed (setup) exchange: the crash defers, mail flows.
        let mut out = c.empty_outboxes::<u64>();
        out[1].push((0, 11));
        let inboxes = c.exchange("setup", out).unwrap();
        assert_eq!(inboxes[0], vec![(1, 11)]);
        assert!(c.take_fired_faults().is_empty());

        // The driver peeks the imminent crash before arming.
        let imminent = c.imminent_armed_faults();
        assert_eq!(imminent.len(), 1);
        assert!(matches!(imminent[0], Fault::Crash { machine: 1, .. }));

        // Armed exchange: machine 1's outbound and inbound mail vanish.
        c.arm_faults(true);
        let mut out = c.empty_outboxes::<u64>();
        out[1].push((0, 11)); // lost: src crashed
        out[2].push((1, 22)); // lost: dst crashed
        out[2].push((0, 33)); // survives
        let inboxes = c.exchange("main", out).unwrap();
        assert_eq!(inboxes[0], vec![(2, 33)]);
        assert!(inboxes[1].is_empty());
        let fired = c.take_fired_faults();
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].round, 2);
        assert!(c.cost_model().is_quarantined(1));
        // Once fired, the fault never re-fires.
        c.restore_machine(1);
        let mut out = c.empty_outboxes::<u64>();
        out[1].push((0, 44));
        let inboxes = c.exchange("later", out).unwrap();
        assert_eq!(inboxes[0], vec![(1, 44)]);
    }

    #[test]
    fn crashed_straggler_stops_stretching_its_death_round() {
        use crate::fault::{Fault, FaultPlan};
        let mut c = tiny();
        c.set_cost_model(crate::cost::CostModel::uniform(3, 1.0, 1.0, 0.0).with_straggler(1, 0.1));
        c.set_fault_plan(Some(FaultPlan::new().with_fault(Fault::Crash {
            machine: 1,
            round: 1,
        })));
        c.arm_faults(true);
        let mut out = c.empty_outboxes::<u64>();
        out[1].push((0, 1));
        out[2].push((0, 2));
        c.exchange("t", out).unwrap();
        // Alive, machine 1's 1 word at bandwidth 0.1 would cost 10s; dead,
        // machine 2's 1-word send + large's 2-word recv set the barrier.
        let span = c.round_log()[0].makespan;
        assert!((span - 2.0).abs() < 1e-9, "span = {span}");
    }

    #[test]
    fn drop_slowdown_and_delay_faults_apply() {
        use crate::fault::{Fault, FaultPlan};
        let mut c = tiny();
        c.set_fault_plan(Some(
            FaultPlan::new()
                .with_fault(Fault::DropExchange {
                    machine: 2,
                    round: 1,
                })
                .with_fault(Fault::DelayRound {
                    round: 1,
                    seconds: 7.0,
                })
                .with_fault(Fault::Slowdown {
                    machine: 1,
                    round: 1,
                    factor: 0.5,
                }),
        ));
        c.arm_faults(true);
        let mut out = c.empty_outboxes::<u64>();
        out[2].push((0, 22)); // dropped in transit
        out[1].push((0, 11)); // delivered, at half bandwidth
        let inboxes = c.exchange("t", out).unwrap();
        assert_eq!(inboxes[0], vec![(1, 11)], "drop loses only src 2's mail");
        // Makespan: machine 1 sends 1 word at slowed bandwidth 0.5 => 2s,
        // large receives 2 attempted words => 2s; +7s delay.
        let span = c.round_log()[0].makespan;
        assert!((span - 9.0).abs() < 1e-9, "span = {span}");
        assert_eq!(c.take_fired_faults().len(), 3);
        assert!(!c.cost_model().is_quarantined(2), "drop is not a crash");
    }

    #[test]
    fn pending_delay_charges_the_next_exchange_once() {
        use crate::fault::FaultPlan;
        let mut c = tiny();
        c.set_fault_plan(Some(FaultPlan::new()));
        c.add_pending_delay(3.5);
        let out = c.empty_outboxes::<u64>();
        c.exchange("a", out).unwrap();
        assert!((c.round_log()[0].makespan - 3.5).abs() < 1e-9);
        let out = c.empty_outboxes::<u64>();
        c.exchange("b", out).unwrap();
        assert_eq!(c.round_log()[1].makespan, 0.0);
    }

    #[test]
    fn fault_events_reach_the_trace_sink() {
        use crate::fault::{Fault, FaultPlan};
        use crate::telemetry::RingSink;
        let mut c = tiny();
        let ring = std::sync::Arc::new(RingSink::unbounded());
        c.set_trace_sink(Some(ring.clone()));
        c.set_fault_plan(Some(FaultPlan::new().with_fault(Fault::Crash {
            machine: 2,
            round: 1,
        })));
        c.arm_faults(true);
        let out = c.empty_outboxes::<u64>();
        c.exchange("t", out).unwrap();
        assert!(ring.events().iter().any(|e| matches!(
            e,
            TraceEvent::FaultInjected {
                round: 1,
                kind: "crash",
                ..
            }
        )));
    }

    #[test]
    fn exchange_into_presizes_inboxes_exactly() {
        let mut c = tiny();
        let prefix: std::sync::Arc<str> = std::sync::Arc::from("size");
        let mut outgoing = c.empty_outboxes::<u64>();
        let mut inboxes: Vec<Vec<(MachineId, u64)>> = Vec::new();
        for _ in 0..7 {
            outgoing[0].push((1, 9));
        }
        c.exchange_into(
            crate::label::RoundLabel::with_seq(&prefix, 0),
            &mut outgoing,
            &mut inboxes,
        )
        .unwrap();
        assert_eq!(inboxes[1].len(), 7);
        assert!(inboxes[1].capacity() >= 7);
        assert!(inboxes[0].is_empty() && inboxes[2].is_empty());
    }
}
