//! Fanout-tree reduction (global sums, counts, minima).

use crate::cluster::Cluster;
use crate::error::ModelViolation;
use crate::payload::{MachineId, Payload};

/// Reduces one value per participating machine down to `dst` along a fanout
/// tree, combining with `combine`. Returns the combined value (logically
/// resident on `dst`).
///
/// `values[i]` is the contribution of machine `participants[i]`.
/// Rounds: `ceil(log_F P)` with capacity-driven fanout `F`.
///
/// # Errors
///
/// Propagates capacity violations in strict mode.
///
/// # Panics
///
/// Panics if `values.len() != participants.len()` or participants is empty.
pub fn reduce_to<M: Payload>(
    cluster: &mut Cluster,
    label: &str,
    participants: &[MachineId],
    values: Vec<M>,
    dst: MachineId,
    mut combine: impl FnMut(M, M) -> M,
) -> Result<M, ModelViolation> {
    assert_eq!(values.len(), participants.len());
    assert!(!participants.is_empty(), "reduce_to: no participants");
    // Order with dst (or participants[0]) as the tree root, at index 0.
    let mut order: Vec<usize> = (0..participants.len()).collect();
    if let Some(pos) = participants.iter().position(|&p| p == dst) {
        order.swap(0, pos);
    }
    let w = values.iter().map(Payload::words).max().unwrap_or(1).max(1);
    let min_cap = participants
        .iter()
        .map(|&m| cluster.capacity(m))
        .min()
        .unwrap_or(1);
    let fanout = ((min_cap / 2) / w).max(2);

    // current[i] = Some(partial) if tree-node i still holds a live partial.
    let mut current: Vec<Option<M>> = values.into_iter().map(Some).collect();
    let mut active = order.len();
    while active > 1 {
        let parents = active.div_ceil(fanout + 1).max(1);
        let mut out = cluster.empty_outboxes::<(u64, M)>();
        // Node i (parents <= i < active) sends to parent (i - parents) / fanout.
        for i in parents..active {
            let parent = (i - parents) / fanout;
            let val = current[order[i]].take().expect("live partial");
            out[participants[order[i]]]
                .push((participants[order[parent]], (order[parent] as u64, val)));
        }
        let inboxes = cluster.exchange(label, out)?;
        for inbox in inboxes {
            for (_src, (slot, val)) in inbox {
                let slot = slot as usize;
                let cur = current[slot].take().expect("parent partial");
                current[slot] = Some(combine(cur, val));
            }
        }
        active = parents;
    }
    let result = current[order[0]].take().expect("root partial");
    // If dst was not a participant, forward the result in one more round.
    if participants[order[0]] != dst {
        let mut out = cluster.empty_outboxes::<M>();
        out[participants[order[0]]].push((dst, result.clone()));
        cluster.exchange(label, out)?;
    }
    Ok(result)
}

/// Sums one `u64` per participating machine into `dst`.
///
/// # Errors
///
/// Propagates capacity violations in strict mode.
pub fn sum_to(
    cluster: &mut Cluster,
    label: &str,
    participants: &[MachineId],
    values: Vec<u64>,
    dst: MachineId,
) -> Result<u64, ModelViolation> {
    reduce_to(cluster, label, participants, values, dst, |a, b| a + b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ClusterConfig, Topology};

    fn cluster(k: usize, cap: usize) -> Cluster {
        Cluster::new(ClusterConfig::new(64, 256).topology(Topology::Custom {
            capacities: vec![cap; k],
            large: Some(0),
        }))
    }

    #[test]
    fn sums_across_many_machines() {
        let mut c = cluster(40, 8);
        let parts: Vec<usize> = (0..40).collect();
        let vals: Vec<u64> = (0..40).collect();
        let s = sum_to(&mut c, "sum", &parts, vals, 0).unwrap();
        assert_eq!(s, (0..40).sum::<u64>());
        assert!(c.rounds() >= 2, "tight capacity forces a tree");
    }

    #[test]
    fn single_round_with_big_capacity() {
        let mut c = cluster(10, 1000);
        let parts: Vec<usize> = (0..10).collect();
        let s = sum_to(&mut c, "sum", &parts, vec![1; 10], 0).unwrap();
        assert_eq!(s, 10);
        assert_eq!(c.rounds(), 1);
    }

    #[test]
    fn reduce_with_min() {
        let mut c = cluster(8, 100);
        let parts: Vec<usize> = (0..8).collect();
        let vals = vec![9u64, 4, 7, 1, 8, 2, 6, 3];
        let m = reduce_to(&mut c, "min", &parts, vals, 0, |a, b| a.min(b)).unwrap();
        assert_eq!(m, 1);
    }

    #[test]
    fn dst_outside_participants() {
        let mut c = cluster(5, 100);
        let parts: Vec<usize> = vec![1, 2, 3];
        let s = sum_to(&mut c, "sum", &parts, vec![5, 6, 7], 0).unwrap();
        assert_eq!(s, 18);
    }

    #[test]
    fn single_participant() {
        let mut c = cluster(3, 100);
        let s = sum_to(&mut c, "sum", &[2], vec![42], 2).unwrap();
        assert_eq!(s, 42);
        assert_eq!(c.rounds(), 0);
    }
}
