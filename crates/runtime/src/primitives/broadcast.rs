//! Capacity-driven fanout-tree broadcast.

use crate::cluster::Cluster;
use crate::error::ModelViolation;
use crate::payload::{MachineId, Payload};

/// Broadcasts `msg` from `root` to every machine in `targets` using a fanout
/// tree sized to the machines' capacities.
///
/// The fanout `F` is chosen so that a relay sending `F` copies of the message
/// stays within half of the smallest participating capacity, giving
/// `ceil(log_F (|targets|+1))` rounds — `O((1−γ)/γ)` in the paper's terms.
///
/// Returns the number of rounds used.
///
/// # Errors
///
/// Propagates capacity violations in strict mode (e.g. if the message alone
/// exceeds half a machine's capacity no fanout ≥ 2 exists and the exchange
/// itself will overflow).
pub fn broadcast<M: Payload>(
    cluster: &mut Cluster,
    label: &str,
    root: MachineId,
    msg: &M,
    targets: &[MachineId],
) -> Result<u64, ModelViolation> {
    let order: Vec<MachineId> = std::iter::once(root)
        .chain(targets.iter().copied().filter(|&t| t != root))
        .collect();
    let total = order.len();
    if total <= 1 {
        return Ok(0);
    }
    let w = msg.words().max(1);
    let min_cap = order
        .iter()
        .map(|&m| cluster.capacity(m))
        .min()
        .unwrap_or(1);
    let fanout = ((min_cap / 2) / w).max(2);
    let mut informed = 1usize;
    let mut rounds = 0u64;
    while informed < total {
        let mut out = cluster.empty_outboxes::<M>();
        let wave_end = (informed + informed * fanout).min(total);
        // Informed node i relays to the i-th slice of the new wave.
        for (i, &relay) in order[..informed].iter().enumerate() {
            let lo = informed + i * fanout;
            let hi = (lo + fanout).min(wave_end);
            for &dst in order.get(lo..hi).unwrap_or(&[]) {
                out[relay].push((dst, msg.clone()));
            }
        }
        cluster.exchange(label, out)?;
        rounds += 1;
        informed = wave_end;
    }
    Ok(rounds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ClusterConfig, Topology};

    fn cluster(caps: Vec<usize>) -> Cluster {
        Cluster::new(ClusterConfig::new(64, 256).topology(Topology::Custom {
            capacities: caps,
            large: Some(0),
        }))
    }

    #[test]
    fn single_round_when_capacity_allows() {
        let mut c = cluster(vec![1000, 100, 100, 100]);
        let targets = c.small_ids();
        let r = broadcast(&mut c, "b", 0, &7u64, &targets).unwrap();
        assert_eq!(r, 1);
        assert_eq!(c.rounds(), 1);
    }

    #[test]
    fn logarithmic_rounds_under_tight_capacity() {
        // 32 machines, capacity lets each relay reach 2 others per round.
        let mut c = cluster(vec![5; 33]);
        let targets = c.small_ids();
        let msg = vec![1u64, 2]; // 2 words; fanout = (5/2)/2 = 1 -> clamped to 2
        let r = broadcast(&mut c, "b", 0, &msg, &targets).unwrap();
        // 1 + 2 + 4 + ... covers 33 nodes in ceil(log3ish) waves; sanity range:
        assert!((3..=6).contains(&r), "rounds = {r}");
        // No capacity violations in strict mode: reaching here proves it.
    }

    #[test]
    fn empty_targets_is_free() {
        let mut c = cluster(vec![10, 10]);
        assert_eq!(broadcast(&mut c, "b", 0, &1u64, &[]).unwrap(), 0);
        assert_eq!(c.rounds(), 0);
    }
}
