//! O(1)-round communication primitives (the paper's Claims 1–4).
//!
//! | Paper tool | Implementation | Rounds |
//! |---|---|---|
//! | Claim 1 (sorting) | [`sort::sample_sort`] — sample-based splitter sort, two-level when capacities demand it | 3–8 |
//! | Claim 2 (aggregation) | [`aggregate::aggregate_by_key`] — hash-partitioned owners | 1–2 |
//! | Claim 3 (dissemination) | [`kv::disseminate`] — hash-owned key-value service with relay wave for hot keys | 3–4 |
//! | Claim 4 (arranging nodes) | [`aggregate::top_t_per_key`] — per-vertex lightest-item selection at a designated machine | 2 |
//! | (folklore) broadcast/reduce | [`broadcast::broadcast`], [`reduce::reduce_to`] — capacity-driven fanout trees | `O(log_F K)` |
//!
//! **Substitution note (recorded in DESIGN.md §4):** Claims 2–4 in the paper
//! route through sorted machine *ranges* with per-vertex machine trees. We
//! implement the same information flow with *hash-partitioned owners*, which
//! respects the identical capacity constraints, costs the same `O(1)` round
//! class, and is robust to arbitrary initial edge placement. Hot keys (a
//! vertex whose edges span nearly all machines) get a two-wave relay in
//! [`kv::disseminate`], mirroring the paper's trees.

pub mod aggregate;
pub mod broadcast;
pub mod gather;
pub mod kv;
pub mod reduce;
pub mod sort;

pub use aggregate::{aggregate_by_key, top_t_per_key};
pub use broadcast::broadcast;
pub use gather::gather_to;
pub use kv::{disseminate, lookup};
pub use reduce::{reduce_to, sum_to};
pub use sort::sample_sort;

use crate::payload::MachineId;

/// Keys that can be deterministically hashed to an owner machine.
///
/// Implemented for the id-like types the algorithms use. The hash is a fixed
/// SplitMix64 finalizer — deterministic across runs and platforms (unlike
/// `std`'s `RandomState`), which keeps whole simulations reproducible.
pub trait HashKey: Clone + Ord + Eq {
    /// A well-mixed 64-bit hash of the key.
    fn hash64(&self) -> u64;
}

#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl HashKey for u32 {
    fn hash64(&self) -> u64 {
        splitmix64(*self as u64)
    }
}

impl HashKey for u64 {
    fn hash64(&self) -> u64 {
        splitmix64(*self)
    }
}

impl HashKey for usize {
    fn hash64(&self) -> u64 {
        splitmix64(*self as u64)
    }
}

impl HashKey for (u32, u32) {
    fn hash64(&self) -> u64 {
        splitmix64(((self.0 as u64) << 32) | self.1 as u64)
    }
}

impl HashKey for (u64, u64) {
    fn hash64(&self) -> u64 {
        splitmix64(self.0.wrapping_mul(0xa076_1d64_78bd_642f) ^ self.1)
    }
}

/// The owner machine of `key` among `owners`.
///
/// # Panics
///
/// Panics if `owners` is empty.
pub fn owner_of<K: HashKey>(key: &K, owners: &[MachineId]) -> MachineId {
    assert!(!owners.is_empty(), "owner_of: no owner machines");
    owners[(key.hash64() % owners.len() as u64) as usize]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashing_is_deterministic_and_spread() {
        let owners: Vec<MachineId> = (1..9).collect();
        let a = owner_of(&42u32, &owners);
        assert_eq!(a, owner_of(&42u32, &owners));
        // Spread: 1000 keys should hit every owner.
        let mut seen = std::collections::HashSet::new();
        for k in 0u32..1000 {
            seen.insert(owner_of(&k, &owners));
        }
        assert_eq!(seen.len(), owners.len());
    }

    #[test]
    fn pair_keys_hash_differently_by_order() {
        assert_ne!((1u32, 2u32).hash64(), (2u32, 1u32).hash64());
    }
}
