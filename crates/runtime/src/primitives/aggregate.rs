//! Key-partitioned aggregation (the paper's Claim 2) and per-key top-t
//! selection (the paper's Claim 4 / "collect the lightest edges of each
//! vertex at the large machine", §3).

use super::{owner_of, HashKey};
use crate::cluster::Cluster;
use crate::error::ModelViolation;
use crate::payload::{MachineId, Payload};
use crate::sharded::ShardedVec;
use std::collections::BTreeMap;

/// Aggregates all `(key, value)` items under an associative, commutative
/// `combine`, leaving one `(key, f(values))` pair on the key's hash-owner
/// machine. 2 rounds (group collectors, then owners) plus free local
/// combining.
///
/// This is Claim 2 with hash-partitioned owners instead of sorted ranges:
/// the per-machine receive volume is the number of distinct
/// `(machine, key)` pairs mapping to it, which hashing balances; the
/// collector stage bounds the damage of hot keys spanning all machines.
///
/// Returns the owner-sharded aggregates, sorted by key within each shard.
///
/// # Errors
///
/// Propagates capacity violations in strict mode.
pub fn aggregate_by_key<K, V>(
    cluster: &mut Cluster,
    label: &str,
    items: &ShardedVec<(K, V)>,
    owners: &[MachineId],
    mut combine: impl FnMut(&V, &V) -> V,
) -> Result<ShardedVec<(K, V)>, ModelViolation>
where
    K: HashKey + Payload,
    V: Payload,
{
    assert!(!owners.is_empty(), "aggregate_by_key: no owners");
    // Stage A: local combine, then route each partial to a *group collector*
    // — a machine determined by (key, sender-group). A key whose copies span
    // all K machines thus converges on ≤ ceil(K/G) collectors first, so no
    // single machine ever receives more than max(G, K/G) partials per key.
    // This is the fanout-tree of the paper's Claim 2, flattened to 2 rounds.
    let k_machines = cluster.machines();
    let group = (k_machines as f64).sqrt().ceil() as usize;
    let mut out = cluster.empty_outboxes::<(K, V)>();
    let mut local: Vec<BTreeMap<K, V>> = (0..k_machines).map(|_| BTreeMap::new()).collect();
    for mid in 0..items.machines() {
        let mut partial: BTreeMap<K, V> = BTreeMap::new();
        for (k, v) in items.shard(mid) {
            match partial.get(k) {
                Some(cur) => {
                    let merged = combine(cur, v);
                    partial.insert(k.clone(), merged);
                }
                None => {
                    partial.insert(k.clone(), v.clone());
                }
            }
        }
        let g = (mid / group) as u64;
        for (k, v) in partial {
            let idx = (k
                .hash64()
                .wrapping_add(g.wrapping_mul(0x9e37_79b9_7f4a_7c15))
                % owners.len() as u64) as usize;
            let dst = owners[idx];
            if dst == mid {
                merge_into(&mut local[mid], k, v, &mut combine);
            } else {
                out[mid].push((dst, (k, v)));
            }
        }
    }
    let inboxes = cluster.exchange(&format!("{label}.collect"), out)?;
    for (mid, inbox) in inboxes.into_iter().enumerate() {
        for (_src, (k, v)) in inbox {
            merge_into(&mut local[mid], k, v, &mut combine);
        }
    }
    // Stage B: collectors forward their combined partials to the hash owner.
    let mut out = cluster.empty_outboxes::<(K, V)>();
    let mut at_owner: Vec<BTreeMap<K, V>> = (0..k_machines).map(|_| BTreeMap::new()).collect();
    for mid in 0..k_machines {
        for (k, v) in std::mem::take(&mut local[mid]) {
            let dst = owner_of(&k, owners);
            if dst == mid {
                merge_into(&mut at_owner[mid], k, v, &mut combine);
            } else {
                out[mid].push((dst, (k, v)));
            }
        }
    }
    let inboxes = cluster.exchange(&format!("{label}.combine"), out)?;
    let mut result = ShardedVec::new(cluster);
    for (mid, inbox) in inboxes.into_iter().enumerate() {
        let mut acc = std::mem::take(&mut at_owner[mid]);
        for (_src, (k, v)) in inbox {
            merge_into(&mut acc, k, v, &mut combine);
        }
        *result.shard_mut(mid) = acc.into_iter().collect();
    }
    Ok(result)
}

fn merge_into<K: Ord, V>(
    map: &mut BTreeMap<K, V>,
    k: K,
    v: V,
    combine: &mut impl FnMut(&V, &V) -> V,
) {
    match map.get(&k) {
        Some(cur) => {
            let merged = combine(cur, &v);
            map.insert(k, merged);
        }
        None => {
            map.insert(k, v);
        }
    }
}

/// Collects, for every key, the `t(key)` smallest items (by `rank`) at
/// machine `dst`. 3 rounds: local-top-t → group collectors → hash owners →
/// `dst` (the collector stage bounds what any machine receives for a hot
/// key to `max(√K, t·√K)` items instead of the key's full multiplicity —
/// the paper's Claim-4 trees achieve the same via sorted ranges).
///
/// This implements the paper's Claim 4 workflow as used by the MST algorithm
/// (§3): the large machine obtains the `min(2^(2^i), deg(v))` lightest
/// outgoing edges of every vertex `v`. Correctness of the truncations:
/// every globally-top-`t` item of a key is locally-top-`t` at every stage
/// that sees it.
///
/// The caller is responsible (as in the paper) for choosing `t` so the total
/// volume fits `dst` — strict enforcement verifies it.
///
/// # Errors
///
/// Propagates capacity violations in strict mode.
pub fn top_t_per_key<K, T, R>(
    cluster: &mut Cluster,
    label: &str,
    items: &ShardedVec<(K, T)>,
    owners: &[MachineId],
    dst: MachineId,
    t_of: impl Fn(&K) -> usize,
    rank: impl Fn(&T) -> R,
) -> Result<Vec<(K, Vec<T>)>, ModelViolation>
where
    K: HashKey + Payload,
    T: Payload,
    R: Ord,
{
    assert!(!owners.is_empty(), "top_t_per_key: no owners");
    // Phase 1: local top-t per key, routed to (key, sender-group)
    // collectors so a key stored on many machines never concentrates its
    // full multiplicity on one machine.
    let group = (cluster.machines() as f64).sqrt().ceil() as usize;
    let mut out = cluster.empty_outboxes::<(K, T)>();
    let mut local: Vec<Vec<(K, T)>> = (0..cluster.machines()).map(|_| Vec::new()).collect();
    for mid in 0..items.machines() {
        let mut groups: BTreeMap<K, Vec<T>> = BTreeMap::new();
        for (k, v) in items.shard(mid) {
            groups.entry(k.clone()).or_default().push(v.clone());
        }
        let g = (mid / group) as u64;
        for (k, mut vs) in groups {
            vs.sort_by_key(|a| rank(a));
            vs.truncate(t_of(&k).max(1));
            let idx = (k
                .hash64()
                .wrapping_add(g.wrapping_mul(0x9e37_79b9_7f4a_7c15))
                % owners.len() as u64) as usize;
            let collector = owners[idx];
            for v in vs {
                if collector == mid {
                    local[mid].push((k.clone(), v));
                } else {
                    out[mid].push((collector, (k.clone(), v)));
                }
            }
        }
    }
    let inboxes = cluster.exchange(&format!("{label}.collect"), out)?;

    // Phase 1b: collectors re-truncate and forward to the hash owners.
    let mut out = cluster.empty_outboxes::<(K, T)>();
    for (mid, inbox) in inboxes.into_iter().enumerate() {
        let mut groups: BTreeMap<K, Vec<T>> = BTreeMap::new();
        for (k, v) in local[mid].drain(..) {
            groups.entry(k).or_default().push(v);
        }
        for (_src, (k, v)) in inbox {
            groups.entry(k).or_default().push(v);
        }
        for (k, mut vs) in groups {
            vs.sort_by_key(|a| rank(a));
            vs.truncate(t_of(&k).max(1));
            let owner = owner_of(&k, owners);
            for v in vs {
                if owner == mid {
                    local[mid].push((k.clone(), v));
                } else {
                    out[mid].push((owner, (k.clone(), v)));
                }
            }
        }
    }
    let inboxes = cluster.exchange(label, out)?;

    // Phase 2: owners compute the global top-t per key and forward to dst.
    let mut out = cluster.empty_outboxes::<(K, T)>();
    let mut at_dst: Vec<(K, T)> = Vec::new();
    for (mid, inbox) in inboxes.into_iter().enumerate() {
        let mut groups: BTreeMap<K, Vec<T>> = BTreeMap::new();
        for (k, v) in local[mid].drain(..) {
            groups.entry(k).or_default().push(v);
        }
        for (_src, (k, v)) in inbox {
            groups.entry(k).or_default().push(v);
        }
        for (k, mut vs) in groups {
            vs.sort_by_key(|a| rank(a));
            vs.truncate(t_of(&k).max(1));
            for v in vs {
                if mid == dst {
                    at_dst.push((k.clone(), v));
                } else {
                    out[mid].push((dst, (k.clone(), v)));
                }
            }
        }
    }
    let inboxes = cluster.exchange(label, out)?;
    let mut groups: BTreeMap<K, Vec<T>> = BTreeMap::new();
    for (k, v) in at_dst {
        groups.entry(k).or_default().push(v);
    }
    for (_src, (k, v)) in inboxes[dst].iter().cloned() {
        groups.entry(k).or_default().push(v);
    }
    Ok(groups
        .into_iter()
        .map(|(k, mut vs)| {
            vs.sort_by_key(|a| rank(a));
            (k, vs)
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ClusterConfig, Topology};

    fn cluster() -> Cluster {
        Cluster::new(ClusterConfig::new(64, 256).topology(Topology::Custom {
            capacities: vec![4000, 300, 300, 300, 300],
            large: Some(0),
        }))
    }

    #[test]
    fn aggregates_sums_by_key() {
        let mut c = cluster();
        let owners = c.small_ids();
        let mut sv: ShardedVec<(u32, u64)> = ShardedVec::new(&c);
        // Key k appears on several machines with value 1 each.
        for mid in 1..5 {
            for k in 0..10u32 {
                sv[mid].push((k, 1));
                if k % 2 == 0 {
                    sv[mid].push((k, 1));
                }
            }
        }
        let agg = aggregate_by_key(&mut c, "deg", &sv, &owners, |a, b| a + b).unwrap();
        assert_eq!(c.rounds(), 2); // collect + combine stages
        let mut all: Vec<(u32, u64)> = agg.into_flat();
        all.sort();
        let expect: Vec<(u32, u64)> = (0..10)
            .map(|k| (k, if k % 2 == 0 { 8 } else { 4 }))
            .collect();
        assert_eq!(all, expect);
    }

    #[test]
    fn aggregate_handles_owner_local_items() {
        let mut c = cluster();
        let owners = vec![1usize];
        let mut sv: ShardedVec<(u32, u64)> = ShardedVec::new(&c);
        sv[1].push((7, 5)); // already on the only owner
        sv[2].push((7, 6));
        let agg = aggregate_by_key(&mut c, "x", &sv, &owners, |a, b| a + b).unwrap();
        assert_eq!(agg.shard(1), &[(7u32, 11u64)]);
    }

    #[test]
    fn top_t_selects_global_minima() {
        let mut c = cluster();
        let owners = c.small_ids();
        let mut sv: ShardedVec<(u32, u64)> = ShardedVec::new(&c);
        // Key 1: values spread over machines; global top-2 = {10, 11}.
        sv[1].push((1, 30));
        sv[1].push((1, 10));
        sv[2].push((1, 11));
        sv[3].push((1, 25));
        // Key 2: fewer than t items.
        sv[4].push((2, 99));
        let got = top_t_per_key(&mut c, "top", &sv, &owners, 0, |_| 2, |v| *v).unwrap();
        assert_eq!(c.rounds(), 3); // collect + owner + dst stages
        assert_eq!(got, vec![(1, vec![10, 11]), (2, vec![99])]);
    }

    #[test]
    fn top_t_varies_by_key() {
        let mut c = cluster();
        let owners = c.small_ids();
        let mut sv: ShardedVec<(u32, u64)> = ShardedVec::new(&c);
        for v in 0..6 {
            sv[1 + (v as usize % 4)].push((0u32, v));
            sv[1 + (v as usize % 4)].push((1u32, v));
        }
        let got = top_t_per_key(
            &mut c,
            "top",
            &sv,
            &owners,
            0,
            |k| if *k == 0 { 1 } else { 3 },
            |v| *v,
        )
        .unwrap();
        assert_eq!(got[0].1, vec![0]);
        assert_eq!(got[1].1, vec![0, 1, 2]);
    }
}
