//! Direct gather of sharded data to one machine.

use crate::cluster::Cluster;
use crate::error::ModelViolation;
use crate::payload::{MachineId, Payload};
use crate::sharded::ShardedVec;

/// Sends every item of `sv` to machine `dst` in a single round and returns
/// the collected items in machine order.
///
/// This is the "send the (sparsified) edges to the large machine" step used
/// all over the paper; the caller guarantees the data is small enough
/// (`Õ(n)`), and strict enforcement verifies it.
///
/// # Errors
///
/// Propagates capacity violations — in particular
/// [`ModelViolation::RecvOverflow`] on `dst` if the data does not fit.
pub fn gather_to<T: Payload>(
    cluster: &mut Cluster,
    label: &str,
    sv: &ShardedVec<T>,
    dst: MachineId,
) -> Result<Vec<T>, ModelViolation> {
    let mut out = cluster.empty_outboxes::<T>();
    let mut local: Vec<T> = Vec::new();
    for mid in 0..sv.machines() {
        for item in sv.shard(mid) {
            if mid == dst {
                local.push(item.clone());
            } else {
                out[mid].push((dst, item.clone()));
            }
        }
    }
    let inboxes = cluster.exchange(label, out)?;
    let mut result = local;
    result.extend(inboxes[dst].iter().map(|(_src, t)| t.clone()));
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ClusterConfig, Topology};

    fn cluster(caps: Vec<usize>) -> Cluster {
        Cluster::new(ClusterConfig::new(64, 256).topology(Topology::Custom {
            capacities: caps,
            large: Some(0),
        }))
    }

    #[test]
    fn gathers_everything_in_one_round() {
        let mut c = cluster(vec![100, 10, 10, 10]);
        let mut sv: ShardedVec<u64> = ShardedVec::new(&c);
        sv[1].extend([1, 2]);
        sv[2].extend([3]);
        sv[0].push(0); // dst's own data is kept, not sent
        let got = gather_to(&mut c, "g", &sv, 0).unwrap();
        assert_eq!(got, vec![0, 1, 2, 3]);
        assert_eq!(c.rounds(), 1);
    }

    #[test]
    fn overflow_is_detected() {
        let mut c = cluster(vec![4, 10, 10]);
        let mut sv: ShardedVec<u64> = ShardedVec::new(&c);
        sv[1].extend(0..5);
        assert!(matches!(
            gather_to(&mut c, "g", &sv, 0),
            Err(ModelViolation::RecvOverflow { machine: 0, .. })
        ));
    }
}
