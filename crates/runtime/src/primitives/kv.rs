//! Dissemination: a hash-owned key-value service (the paper's Claim 3).
//!
//! The large machine holds `(key, value)` pairs (e.g. contraction maps,
//! flow labels, cluster-center histories) and every small machine needs the
//! values for the keys it stores edges of. The paper routes this through
//! per-vertex machine trees over sorted ranges; we implement the same flow
//! with hash-partitioned owner machines and a relay wave for hot keys.
//!
//! Two entry points:
//!
//! * [`disseminate`] — pairs start on a single source machine (typically the
//!   large machine); 1 scatter round + the answer protocol;
//! * [`lookup`] — pairs already live on their hash-owner machines (e.g. the
//!   output of [`aggregate_by_key`](super::aggregate_by_key)); answer
//!   protocol only.

use super::{owner_of, HashKey};
use crate::cluster::Cluster;
use crate::error::ModelViolation;
use crate::payload::{MachineId, Payload};
use crate::sharded::ShardedVec;
use std::collections::BTreeMap;

/// Delivers `pairs` (resident on `src`) to every machine that requests their
/// keys. `requests.shard(m)` lists the keys machine `m` wants (duplicates
/// are deduplicated locally, for free).
///
/// Rounds: 3 when no key is hot, 5 otherwise —
/// 1. `src` scatters each pair to its hash-owner,
/// 2. requesters send their key lists to the owners,
/// 3. owners answer (directly, or via a relay wave for keys requested by
///    more machines than a capacity-derived threshold, mirroring the paper's
///    dissemination trees).
///
/// Returns the `(key, value)` pairs delivered to each machine (keys missing
/// from `pairs` are silently absent).
///
/// # Errors
///
/// Propagates capacity violations in strict mode.
pub fn disseminate<K, V>(
    cluster: &mut Cluster,
    label: &str,
    pairs: &[(K, V)],
    src: MachineId,
    requests: &ShardedVec<K>,
    owners: &[MachineId],
) -> Result<ShardedVec<(K, V)>, ModelViolation>
where
    K: HashKey + Payload,
    V: Payload,
{
    assert!(!owners.is_empty(), "disseminate: no owners");
    // Round 1: src scatters pairs to hash owners.
    let mut out = cluster.empty_outboxes::<(K, V)>();
    let mut owner_store: Vec<BTreeMap<K, V>> =
        (0..cluster.machines()).map(|_| BTreeMap::new()).collect();
    for (k, v) in pairs {
        let dst = owner_of(k, owners);
        if dst == src {
            owner_store[dst].insert(k.clone(), v.clone());
        } else {
            out[src].push((dst, (k.clone(), v.clone())));
        }
    }
    let inboxes = cluster.exchange(&format!("{label}.scatter"), out)?;
    for (mid, inbox) in inboxes.into_iter().enumerate() {
        for (_src, (k, v)) in inbox {
            owner_store[mid].insert(k, v);
        }
    }
    answer_requests(cluster, label, owner_store, requests, owners)
}

/// [`disseminate`] for pairs that already sit on their hash-owner machines
/// (`store.shard(owner_of(k))` contains `(k, v)`). Saves the scatter round.
///
/// # Errors
///
/// Propagates capacity violations in strict mode.
pub fn lookup<K, V>(
    cluster: &mut Cluster,
    label: &str,
    store: &ShardedVec<(K, V)>,
    requests: &ShardedVec<K>,
    owners: &[MachineId],
) -> Result<ShardedVec<(K, V)>, ModelViolation>
where
    K: HashKey + Payload,
    V: Payload,
{
    assert!(!owners.is_empty(), "lookup: no owners");
    let mut owner_store: Vec<BTreeMap<K, V>> =
        (0..cluster.machines()).map(|_| BTreeMap::new()).collect();
    for mid in 0..store.machines() {
        for (k, v) in store.shard(mid) {
            debug_assert_eq!(owner_of(k, owners), mid, "stored key not on its hash-owner");
            owner_store[mid].insert(k.clone(), v.clone());
        }
    }
    answer_requests(cluster, label, owner_store, requests, owners)
}

/// The request/answer protocol shared by [`disseminate`] and [`lookup`].
fn answer_requests<K, V>(
    cluster: &mut Cluster,
    label: &str,
    owner_store: Vec<BTreeMap<K, V>>,
    requests: &ShardedVec<K>,
    owners: &[MachineId],
) -> Result<ShardedVec<(K, V)>, ModelViolation>
where
    K: HashKey + Payload,
    V: Payload,
{
    // Requesters send deduplicated key lists to owners.
    let mut out = cluster.empty_outboxes::<K>();
    let mut local_requests: Vec<Vec<K>> = (0..cluster.machines()).map(|_| Vec::new()).collect();
    for mid in 0..requests.machines() {
        let mut keys: Vec<K> = requests.shard(mid).to_vec();
        keys.sort();
        keys.dedup();
        for k in keys {
            let dst = owner_of(&k, owners);
            if dst == mid {
                local_requests[mid].push(k);
            } else {
                out[mid].push((dst, k));
            }
        }
    }
    let inboxes = cluster.exchange(&format!("{label}.request"), out)?;

    // Owners tabulate requesters per key (deterministic order).
    let mut wanted: Vec<BTreeMap<K, Vec<MachineId>>> =
        (0..cluster.machines()).map(|_| BTreeMap::new()).collect();
    for (mid, inbox) in inboxes.into_iter().enumerate() {
        for k in local_requests[mid].drain(..) {
            wanted[mid].entry(k).or_default().push(mid);
        }
        for (requester, k) in inbox {
            wanted[mid].entry(k).or_default().push(requester);
        }
    }

    // Owners answer; hot keys (and owners near their direct budget) go
    // through a relay wave.
    let value_words = owner_store
        .iter()
        .flat_map(|m| m.values())
        .map(Payload::words)
        .max()
        .unwrap_or(1)
        .max(1);
    let hot_threshold = (cluster.min_small_capacity() / (4 * value_words)).max(4);
    // Relay fanout: each tree node forwards the value to at most `branch`
    // children per round, keeping its send volume within a quarter of the
    // smallest capacity (the paper's dissemination trees, over requester
    // lists instead of sorted machine ranges).
    let branch = hot_threshold.max(2);
    let mut result: ShardedVec<(K, V)> = ShardedVec::new(cluster);
    let mut direct = cluster.empty_outboxes::<(K, V)>();
    // Relay message: (key, value, subtree of requesters the node serves).
    let mut relay = cluster.empty_outboxes::<(K, V, Vec<u64>)>();
    for mid in 0..cluster.machines() {
        // Greedy cap-awareness: once an owner's direct answers approach half
        // its capacity, remaining keys switch to the relay path (whose send
        // cost per requester is ~1 id word instead of the full value).
        let mut direct_words = 0usize;
        let direct_budget = cluster.capacity(mid) / 2;
        for (k, requesters) in &wanted[mid] {
            let Some(v) = owner_store[mid].get(k) else {
                continue;
            };
            let cost_direct = requesters.len() * (k.words() + v.words());
            if requesters.len() <= hot_threshold && direct_words + cost_direct <= direct_budget {
                direct_words += cost_direct;
                for &r in requesters {
                    if r == mid {
                        result.shard_mut(mid).push((k.clone(), v.clone()));
                    } else {
                        direct[mid].push((r, (k.clone(), v.clone())));
                    }
                }
            } else {
                // Rotate the requester list by a key-dependent offset so the
                // tree roots of different hot keys land on different
                // machines (requester lists are sorted, so without rotation
                // low machine ids would head every tree).
                let off = (k.hash64() >> 32) as usize % requesters.len();
                let rotated: Vec<u64> = requesters[off..]
                    .iter()
                    .chain(&requesters[..off])
                    .map(|&r| r as u64)
                    .collect();
                // The owner fans out minimally (2 roots): its send volume is
                // then ~2 headers + the id list per hot key, and the value
                // replication happens further down the tree.
                push_subtrees(&mut relay[mid], k, v, &rotated, 2, mid);
            }
        }
    }
    let inboxes = cluster.exchange(&format!("{label}.answer"), direct)?;
    for (mid, inbox) in inboxes.into_iter().enumerate() {
        for (_owner, (k, v)) in inbox {
            result.shard_mut(mid).push((k, v));
        }
    }
    // Relay rounds: each node delivers locally and re-fans its subtree.
    // Nodes serving many keys shrink their per-key fanout so the combined
    // header volume stays bounded (deeper trees instead of fatter sends).
    let mut wave = relay;
    while wave.iter().any(|o| !o.is_empty()) {
        let inboxes = cluster.exchange(&format!("{label}.relay"), wave)?;
        wave = cluster.empty_outboxes::<(K, V, Vec<u64>)>();
        for (mid, inbox) in inboxes.into_iter().enumerate() {
            let tasks = inbox.len().max(1);
            let b = (branch / tasks).max(2);
            for (_src, (k, v, subtree)) in inbox {
                result.shard_mut(mid).push((k.clone(), v.clone()));
                push_subtrees(&mut wave[mid], &k, &v, &subtree, b, mid);
            }
        }
    }
    for mid in 0..result.machines() {
        result.shard_mut(mid).sort_by(|a, b| a.0.cmp(&b.0));
        result.shard_mut(mid).dedup_by(|a, b| a.0 == b.0);
    }
    Ok(result)
}

/// Splits `ids` into at most `branch` subtrees and enqueues one relay
/// message per subtree head: `(key, value, rest-of-subtree)`. A head whose
/// id equals `self_mid` still gets a message through the exchange (so the
/// delivery is uniformly accounted); self-sends cannot happen here because
/// an owner never requests its own key through the relay path twice.
fn push_subtrees<K, V>(
    out: &mut Vec<(MachineId, (K, V, Vec<u64>))>,
    k: &K,
    v: &V,
    ids: &[u64],
    branch: usize,
    _self_mid: MachineId,
) where
    K: Clone,
    V: Clone,
{
    if ids.is_empty() {
        return;
    }
    let per = ids.len().div_ceil(branch);
    for part in ids.chunks(per.max(1)) {
        let head = part[0] as MachineId;
        let rest: Vec<u64> = part[1..].to_vec();
        out.push((head, (k.clone(), v.clone(), rest)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ClusterConfig, Topology};

    fn cluster(k: usize, small_cap: usize) -> Cluster {
        let mut caps = vec![small_cap; k];
        caps[0] = 100_000;
        Cluster::new(ClusterConfig::new(64, 256).topology(Topology::Custom {
            capacities: caps,
            large: Some(0),
        }))
    }

    #[test]
    fn delivers_requested_values() {
        let mut c = cluster(6, 400);
        let owners = c.small_ids();
        let pairs: Vec<(u32, u64)> = (0..20).map(|k| (k, 100 + k as u64)).collect();
        let mut req: ShardedVec<u32> = ShardedVec::new(&c);
        req[1].extend([3, 5, 3]); // duplicate request
        req[2].extend([5]);
        req[4].extend([19, 0]);
        let got = disseminate(&mut c, "d", &pairs, 0, &req, &owners).unwrap();
        assert_eq!(got.shard(1), &[(3, 103), (5, 105)]);
        assert_eq!(got.shard(2), &[(5, 105)]);
        assert_eq!(got.shard(4), &[(0, 100), (19, 119)]);
        assert!(got.shard(3).is_empty());
        assert!(c.rounds() <= 4);
    }

    #[test]
    fn missing_keys_are_skipped() {
        let mut c = cluster(4, 400);
        let owners = c.small_ids();
        let pairs: Vec<(u32, u64)> = vec![(1, 11)];
        let mut req: ShardedVec<u32> = ShardedVec::new(&c);
        req[2].extend([1, 9]); // 9 does not exist
        let got = disseminate(&mut c, "d", &pairs, 0, &req, &owners).unwrap();
        assert_eq!(got.shard(2), &[(1, 11)]);
    }

    #[test]
    fn hot_key_uses_relay_and_reaches_everyone() {
        // 40 requesters for one key; small capacity forces the relay path.
        let k = 41;
        let mut c = cluster(k, 80);
        let owners = c.small_ids();
        let pairs: Vec<(u32, Vec<u64>)> = vec![(7, vec![1, 2, 3, 4])]; // 4-word value
        let mut req: ShardedVec<u32> = ShardedVec::new(&c);
        for mid in 1..k {
            req[mid].push(7);
        }
        let got = disseminate(&mut c, "d", &pairs, 0, &req, &owners).unwrap();
        for mid in 1..k {
            assert_eq!(got.shard(mid).len(), 1, "machine {mid} missing value");
            assert_eq!(got.shard(mid)[0].1, vec![1, 2, 3, 4]);
        }
        // scatter, request, answer, then a short relay cascade (depth
        // depends on the capacity-derived branching).
        assert!((5..=8).contains(&c.rounds()), "rounds = {}", c.rounds());
    }

    #[test]
    fn lookup_from_owner_resident_store() {
        let mut c = cluster(6, 400);
        let owners = c.small_ids();
        // Place pairs on their hash-owners directly.
        let mut store: ShardedVec<(u32, u64)> = ShardedVec::new(&c);
        for k in 0..30u32 {
            let mid = owner_of(&k, &owners);
            store[mid].push((k, k as u64 * 7));
        }
        let mut req: ShardedVec<u32> = ShardedVec::new(&c);
        req[2].extend([4, 9, 28]);
        req[5].extend([0]);
        let got = lookup(&mut c, "l", &store, &req, &owners).unwrap();
        assert_eq!(got.shard(2), &[(4, 28), (9, 63), (28, 196)]);
        assert_eq!(got.shard(5), &[(0, 0)]);
        assert!(c.rounds() <= 2, "lookup saves the scatter round");
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut c = cluster(6, 400);
            let owners = c.small_ids();
            let pairs: Vec<(u32, u64)> = (0..50).map(|k| (k, k as u64 * 3)).collect();
            let mut req: ShardedVec<u32> = ShardedVec::new(&c);
            for mid in 1..6 {
                for k in 0..50 {
                    if (k + mid as u32).is_multiple_of(3) {
                        req[mid].push(k);
                    }
                }
            }
            disseminate(&mut c, "d", &pairs, 0, &req, &owners).unwrap()
        };
        assert_eq!(run(), run());
    }
}
