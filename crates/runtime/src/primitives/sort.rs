//! Distributed sample sort (the paper's Claim 1, after \[34\]).
//!
//! After sorting, the concatenation of the participants' shards in machine
//! order is globally sorted: for participants `M < M'`, every item on `M` is
//! no greater than any item on `M'` — exactly the postcondition of Claim 1.
//!
//! Two strategies, chosen by capacity:
//!
//! * **flat** (3–4 rounds): every participant sends `s` evenly spaced local
//!   sample keys to a coordinator, which picks `P−1` splitters and broadcasts
//!   them; one routing round finishes.
//! * **two-level** (≈8 rounds): participants are grouped into `≈√P` groups;
//!   level-0 splitters route items to groups, level-1 splitters within each
//!   group finish. Used when `P` is too large for any single machine to hold
//!   `P−1` splitters — the situation the paper's `O((1−γ)/γ)`-round trees
//!   address.

use crate::cluster::Cluster;
use crate::error::ModelViolation;
use crate::payload::{MachineId, Payload};
use crate::sharded::ShardedVec;

/// Samples per machine for splitter selection. Oversampling keeps bucket
/// imbalance low (a factor ~2 of ideal w.h.p. at simulator scales).
const SAMPLES_PER_MACHINE: usize = 24;

/// Sorts the items of `sv` (which must reside on `participants`) by `key`.
///
/// See the module docs for the strategy. Items with equal keys may land on
/// the same machine regardless of volume; keys used in the workspace embed
/// tie-breakers ([`mpc_graph::WeightKey`]) so this does not skew balance.
///
/// # Errors
///
/// Propagates capacity violations in strict mode.
///
/// # Panics
///
/// Panics if items reside outside `participants`.
pub fn sample_sort<T, K>(
    cluster: &mut Cluster,
    label: &str,
    sv: ShardedVec<T>,
    participants: &[MachineId],
    key: impl Fn(&T) -> K + Copy,
) -> Result<ShardedVec<T>, ModelViolation>
where
    T: Payload,
    K: Ord + Clone + Payload,
{
    assert!(!participants.is_empty(), "sample_sort: no participants");
    for mid in 0..sv.machines() {
        assert!(
            sv.shard(mid).is_empty() || participants.contains(&mid),
            "sample_sort: data on non-participant machine {mid}"
        );
    }
    let p = participants.len();
    if p == 1 {
        let mut sv = sv;
        sv.shard_mut(participants[0]).sort_by_key(|a| key(a));
        return Ok(sv);
    }
    let key_words = sv
        .iter()
        .map(|(_, t)| key(t).words())
        .max()
        .unwrap_or(1)
        .max(1);
    let coordinator = cluster.large().unwrap_or(participants[0]);
    let sample_volume = p * SAMPLES_PER_MACHINE * key_words;
    let splitter_volume = (p - 1) * key_words;
    let min_cap = participants
        .iter()
        .map(|&m| cluster.capacity(m))
        .min()
        .expect("participants non-empty");
    let flat_ok =
        sample_volume <= cluster.capacity(coordinator) / 2 && splitter_volume <= min_cap / 2;
    if flat_ok {
        flat_sort(cluster, label, sv, participants, coordinator, key)
    } else {
        two_level_sort(cluster, label, sv, participants, coordinator, key)
    }
}

/// Picks up to `s` pseudo-random keys from a shard.
///
/// The positions are hash-derived (deterministic), **not** local quantiles:
/// when every machine holds an iid subset of the same distribution, local
/// quantiles collapse into `s` tight spikes at the global quantiles and the
/// splitters computed from them leave most of the key space to a handful of
/// buckets. Random positions give a genuinely uniform pooled sample.
fn local_samples<T, K>(shard: &[T], s: usize, salt: u64, key: impl Fn(&T) -> K) -> Vec<K>
where
    K: Ord + Clone,
{
    if shard.len() <= s {
        let mut keys: Vec<K> = shard.iter().map(&key).collect();
        keys.sort();
        return keys;
    }
    (0..s)
        .map(|i| {
            let mut x = salt
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(i as u64);
            x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            key(&shard[(x % shard.len() as u64) as usize])
        })
        .collect()
}

/// Picks `count` evenly spaced splitters from a pooled sample.
fn pick_splitters<K: Ord + Clone>(mut samples: Vec<K>, count: usize) -> Vec<K> {
    samples.sort();
    if samples.is_empty() || count == 0 {
        return Vec::new();
    }
    (1..=count)
        .map(|i| samples[(i * samples.len() / (count + 1)).min(samples.len() - 1)].clone())
        .collect()
}

/// Picks splitters whose buckets receive key shares proportional to
/// `weights` (bucket `i` should get `weights[i] / sum(weights)` of the items).
fn pick_weighted_splitters<K: Ord + Clone>(mut samples: Vec<K>, weights: &[usize]) -> Vec<K> {
    samples.sort();
    if samples.is_empty() || weights.len() <= 1 {
        return Vec::new();
    }
    let total: usize = weights.iter().sum();
    let mut cum = 0usize;
    weights[..weights.len() - 1]
        .iter()
        .map(|w| {
            cum += w;
            samples[(cum * samples.len() / total).min(samples.len() - 1)].clone()
        })
        .collect()
}

/// Bucket index of `k` among `splitters` (first splitter `> k` wins).
fn bucket_of<K: Ord>(k: &K, splitters: &[K]) -> usize {
    splitters.partition_point(|s| s <= k)
}

fn flat_sort<T, K>(
    cluster: &mut Cluster,
    label: &str,
    sv: ShardedVec<T>,
    participants: &[MachineId],
    coordinator: MachineId,
    key: impl Fn(&T) -> K + Copy,
) -> Result<ShardedVec<T>, ModelViolation>
where
    T: Payload,
    K: Ord + Clone + Payload,
{
    let p = participants.len();
    // Round 1: samples to coordinator.
    let mut out = cluster.empty_outboxes::<K>();
    let mut pooled: Vec<K> = Vec::new();
    for &mid in participants {
        let samples = local_samples(sv.shard(mid), SAMPLES_PER_MACHINE, mid as u64, key);
        if mid == coordinator {
            pooled.extend(samples);
        } else {
            out[mid].extend(samples.into_iter().map(|k| (coordinator, k)));
        }
    }
    let inboxes = cluster.exchange(&format!("{label}.samples"), out)?;
    pooled.extend(inboxes[coordinator].iter().map(|(_, k)| k.clone()));
    let splitters = pick_splitters(pooled, p - 1);

    // Round(s) 2: broadcast splitters.
    super::broadcast::broadcast(
        cluster,
        &format!("{label}.splitters"),
        coordinator,
        &splitters,
        participants,
    )?;

    // Round 3: route and locally sort.
    route_and_sort(
        cluster,
        &format!("{label}.route"),
        sv,
        participants,
        &splitters,
        key,
    )
}

fn two_level_sort<T, K>(
    cluster: &mut Cluster,
    label: &str,
    sv: ShardedVec<T>,
    participants: &[MachineId],
    coordinator: MachineId,
    key: impl Fn(&T) -> K + Copy,
) -> Result<ShardedVec<T>, ModelViolation>
where
    T: Payload,
    K: Ord + Clone + Payload,
{
    let p = participants.len();
    let group_size = (p as f64).sqrt().ceil() as usize;
    let groups: Vec<&[MachineId]> = participants.chunks(group_size).collect();
    let g = groups.len();
    let key_words = sv
        .iter()
        .map(|(_, t)| key(t).words())
        .max()
        .unwrap_or(1)
        .max(1);
    let min_cap = participants
        .iter()
        .map(|&m| cluster.capacity(m))
        .min()
        .expect("participants non-empty");
    // Group leaders receive up to `group_size · s` sample keys; size the
    // sample count so that stays within a quarter of the smallest capacity.
    let s = SAMPLES_PER_MACHINE
        .min(min_cap / (4 * group_size * key_words))
        .max(2);

    // Round 1: each machine sends samples to its group leader.
    let mut out = cluster.empty_outboxes::<K>();
    let mut leader_pool: Vec<Vec<K>> = vec![Vec::new(); g];
    for (gi, group) in groups.iter().enumerate() {
        let leader = group[0];
        for &mid in group.iter() {
            let samples = local_samples(sv.shard(mid), s, mid as u64, key);
            if mid == leader {
                leader_pool[gi].extend(samples);
            } else {
                out[mid].extend(samples.into_iter().map(|k| (leader, k)));
            }
        }
    }
    let inboxes = cluster.exchange(&format!("{label}.l0-samples"), out)?;
    for (gi, group) in groups.iter().enumerate() {
        leader_pool[gi].extend(inboxes[group[0]].iter().map(|(_, k)| k.clone()));
    }

    // Round 2: leaders downsample and forward to the coordinator. The
    // coordinator capacity (often the large machine) allows far more samples
    // than the leaf round did, so forward as much as fits.
    let s2 = (cluster.capacity(coordinator) / (2 * g * key_words)).max(s);
    let mut out = cluster.empty_outboxes::<K>();
    let mut pooled: Vec<K> = Vec::new();
    for (gi, group) in groups.iter().enumerate() {
        let mut ks = std::mem::take(&mut leader_pool[gi]);
        ks.sort();
        let down: Vec<K> = if ks.len() <= s2 {
            ks
        } else {
            (0..s2)
                .map(|i| ks[(2 * i + 1) * ks.len() / (2 * s2)].clone())
                .collect()
        };
        if group[0] == coordinator {
            pooled.extend(down);
        } else {
            out[group[0]].extend(down.into_iter().map(|k| (coordinator, k)));
        }
    }
    let inboxes = cluster.exchange(&format!("{label}.l0-pool"), out)?;
    pooled.extend(inboxes[coordinator].iter().map(|(_, k)| k.clone()));
    let group_weights: Vec<usize> = groups.iter().map(|grp| grp.len()).collect();
    let l0_splitters = pick_weighted_splitters(pooled, &group_weights);

    // Round(s) 3: broadcast level-0 splitters to everyone.
    super::broadcast::broadcast(
        cluster,
        &format!("{label}.l0-splitters"),
        coordinator,
        &l0_splitters,
        participants,
    )?;

    // Round 4: route items to their group (spread round-robin inside).
    let mut out = cluster.empty_outboxes::<T>();
    let mut grouped: ShardedVec<T> = ShardedVec::new(cluster);
    let mut rr = vec![0usize; g];
    for mid in 0..sv.machines() {
        for item in sv.shard(mid) {
            let gi = bucket_of(&key(item), &l0_splitters);
            let dst = groups[gi][rr[gi] % groups[gi].len()];
            rr[gi] += 1;
            if dst == mid {
                grouped.shard_mut(mid).push(item.clone());
            } else {
                out[mid].push((dst, item.clone()));
            }
        }
    }
    let inboxes = cluster.exchange(&format!("{label}.l0-route"), out)?;
    for (mid, inbox) in inboxes.into_iter().enumerate() {
        grouped
            .shard_mut(mid)
            .extend(inbox.into_iter().map(|(_, t)| t));
    }

    // Rounds 5–7: flat sort inside every group, sharing exchanges.
    // 5: samples to leaders.
    let mut out = cluster.empty_outboxes::<K>();
    let mut leader_pool: Vec<Vec<K>> = vec![Vec::new(); g];
    for (gi, group) in groups.iter().enumerate() {
        for &mid in group.iter() {
            let samples = local_samples(grouped.shard(mid), s, mid as u64 ^ 0xABCD, key);
            if mid == group[0] {
                leader_pool[gi].extend(samples);
            } else {
                out[mid].extend(samples.into_iter().map(|k| (group[0], k)));
            }
        }
    }
    let inboxes = cluster.exchange(&format!("{label}.l1-samples"), out)?;
    let mut l1_splitters: Vec<Vec<K>> = Vec::with_capacity(g);
    for (gi, group) in groups.iter().enumerate() {
        let mut pool = std::mem::take(&mut leader_pool[gi]);
        pool.extend(inboxes[group[0]].iter().map(|(_, k)| k.clone()));
        l1_splitters.push(pick_splitters(pool, group.len() - 1));
    }
    // 6: leaders broadcast group splitters along capacity-driven fanout
    // trees, all groups sharing the same exchanges.
    {
        let msg_words = l1_splitters
            .iter()
            .map(|sp| sp.iter().map(Payload::words).sum::<usize>())
            .max()
            .unwrap_or(1)
            .max(1);
        let fanout = ((min_cap / 2) / msg_words).max(2);
        let mut informed: Vec<usize> = vec![1; g];
        while groups
            .iter()
            .enumerate()
            .any(|(gi, grp)| informed[gi] < grp.len())
        {
            let mut out = cluster.empty_outboxes::<Vec<K>>();
            for (gi, grp) in groups.iter().enumerate() {
                let cur = informed[gi];
                if cur >= grp.len() {
                    continue;
                }
                let wave_end = (cur + cur * fanout).min(grp.len());
                for (i, &relay) in grp[..cur].iter().enumerate() {
                    let lo = cur + i * fanout;
                    let hi = (lo + fanout).min(wave_end);
                    for &dst in grp.get(lo..hi).unwrap_or(&[]) {
                        out[relay].push((dst, l1_splitters[gi].clone()));
                    }
                }
                informed[gi] = wave_end;
            }
            cluster.exchange(&format!("{label}.l1-splitters"), out)?;
        }
    }
    // 7: route within groups and sort locally.
    let mut out = cluster.empty_outboxes::<T>();
    let mut result: ShardedVec<T> = ShardedVec::new(cluster);
    for (gi, group) in groups.iter().enumerate() {
        for &mid in group.iter() {
            for item in grouped.shard(mid) {
                let b = bucket_of(&key(item), &l1_splitters[gi]);
                let dst = group[b];
                if dst == mid {
                    result.shard_mut(mid).push(item.clone());
                } else {
                    out[mid].push((dst, item.clone()));
                }
            }
        }
    }
    let inboxes = cluster.exchange(&format!("{label}.l1-route"), out)?;
    for (mid, inbox) in inboxes.into_iter().enumerate() {
        result
            .shard_mut(mid)
            .extend(inbox.into_iter().map(|(_, t)| t));
        result.shard_mut(mid).sort_by_key(|a| key(a));
    }
    Ok(result)
}

fn route_and_sort<T, K>(
    cluster: &mut Cluster,
    label: &str,
    sv: ShardedVec<T>,
    participants: &[MachineId],
    splitters: &[K],
    key: impl Fn(&T) -> K + Copy,
) -> Result<ShardedVec<T>, ModelViolation>
where
    T: Payload,
    K: Ord + Clone + Payload,
{
    let mut out = cluster.empty_outboxes::<T>();
    let mut result: ShardedVec<T> = ShardedVec::new(cluster);
    for mid in 0..sv.machines() {
        for item in sv.shard(mid) {
            let b = bucket_of(&key(item), splitters);
            let dst = participants[b];
            if dst == mid {
                result.shard_mut(mid).push(item.clone());
            } else {
                out[mid].push((dst, item.clone()));
            }
        }
    }
    let inboxes = cluster.exchange(label, out)?;
    for (mid, inbox) in inboxes.into_iter().enumerate() {
        result
            .shard_mut(mid)
            .extend(inbox.into_iter().map(|(_, t)| t));
        result.shard_mut(mid).sort_by_key(|a| key(a));
    }
    Ok(result)
}

/// Checks the Claim-1 postcondition: concatenating `sv`'s shards over
/// `participants` (in order) yields a `key`-sorted sequence.
pub fn is_globally_sorted<T, K>(
    sv: &ShardedVec<T>,
    participants: &[MachineId],
    key: impl Fn(&T) -> K,
) -> bool
where
    K: Ord,
{
    let mut prev: Option<K> = None;
    for &mid in participants {
        for item in sv.shard(mid) {
            let k = key(item);
            if let Some(p) = &prev {
                if *p > k {
                    return false;
                }
            }
            prev = Some(k);
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ClusterConfig, Enforcement, Topology};
    use rand::{Rng, SeedableRng};

    fn cluster(k: usize, small_cap: usize, large_cap: usize) -> Cluster {
        let mut caps = vec![small_cap; k];
        caps[0] = large_cap;
        Cluster::new(
            ClusterConfig::new(64, 256)
                .topology(Topology::Custom {
                    capacities: caps,
                    large: Some(0),
                })
                .enforcement(Enforcement::Strict),
        )
    }

    fn random_items(n: usize, seed: u64) -> Vec<u64> {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        (0..n).map(|_| rng.random_range(0..1_000_000)).collect()
    }

    #[test]
    fn flat_sort_small_cluster() {
        let mut c = cluster(9, 2000, 20_000);
        let parts = c.small_ids();
        let sv = ShardedVec::scatter(&c, random_items(500, 1), &parts);
        let sorted = sample_sort(&mut c, "s", sv, &parts, |&x| x).unwrap();
        assert!(is_globally_sorted(&sorted, &parts, |&x| x));
        assert_eq!(sorted.total_len(), 500);
        assert!(
            c.rounds() <= 4,
            "flat sort should be <= 4 rounds, was {}",
            c.rounds()
        );
    }

    #[test]
    fn two_level_sort_when_capacity_is_tight() {
        // 50 participants, capacity too small to hold 49 splitters * margin.
        let mut c = cluster(51, 90, 400);
        let parts = c.small_ids();
        let sv = ShardedVec::scatter(&c, random_items(1000, 2), &parts);
        let sorted = sample_sort(&mut c, "s", sv, &parts, |&x| x).unwrap();
        assert!(is_globally_sorted(&sorted, &parts, |&x| x));
        assert_eq!(sorted.total_len(), 1000);
        assert!(
            c.rounds() >= 6,
            "expected the two-level path, rounds={}",
            c.rounds()
        );
    }

    #[test]
    fn sorts_pairs_by_custom_key() {
        let mut c = cluster(5, 4000, 20_000);
        let parts = c.small_ids();
        let items: Vec<(u32, u64)> = random_items(300, 3)
            .into_iter()
            .enumerate()
            .map(|(i, x)| (i as u32, x))
            .collect();
        let sv = ShardedVec::scatter(&c, items, &parts);
        let sorted = sample_sort(&mut c, "s", sv, &parts, |t| t.1).unwrap();
        assert!(is_globally_sorted(&sorted, &parts, |t| t.1));
    }

    #[test]
    fn single_participant_sorts_locally() {
        let mut c = cluster(2, 4000, 20_000);
        let mut sv: ShardedVec<u64> = ShardedVec::new(&c);
        sv[1].extend([5, 3, 1]);
        let sorted = sample_sort(&mut c, "s", sv, &[1], |&x| x).unwrap();
        assert_eq!(sorted.shard(1), &[1, 3, 5]);
        assert_eq!(c.rounds(), 0);
    }

    #[test]
    fn deterministic() {
        let run = || {
            let mut c = cluster(9, 2000, 20_000);
            let parts = c.small_ids();
            let sv = ShardedVec::scatter(&c, random_items(400, 9), &parts);
            sample_sort(&mut c, "s", sv, &parts, |&x| x).unwrap()
        };
        assert_eq!(run(), run());
    }
}
