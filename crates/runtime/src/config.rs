//! Cluster configuration: topologies, capacities, enforcement.

use crate::payload::MachineId;

/// Which machines exist and how much memory each has (paper §2).
#[derive(Clone, Debug, PartialEq)]
pub enum Topology {
    /// The paper's Heterogeneous MPC model: machine 0 is the large machine
    /// with `c·n^large_exponent·log^b n` words; `K = ceil(m/n^γ)` small
    /// machines with `c·n^γ·log^b n` words each.
    ///
    /// `large_exponent = 1.0` is the near-linear default; `1 + f` simulates
    /// the superlinear large machine of Theorems 3.1 / 5.5.
    Heterogeneous {
        /// Small-machine memory exponent `γ ∈ (0, 1)`.
        gamma: f64,
        /// Large-machine memory exponent (`1.0` = near-linear, `1+f` superlinear).
        large_exponent: f64,
    },
    /// Homogeneous sublinear regime: `K = ceil(m/n^γ)` machines of
    /// `c·n^γ·log^b n` words; no large machine. The baseline regime.
    Sublinear {
        /// Memory exponent `γ ∈ (0, 1)`.
        gamma: f64,
    },
    /// Homogeneous near-linear regime: `machines` machines of
    /// `c·n·log^b n` words each.
    NearLinear {
        /// Number of machines.
        machines: usize,
    },
    /// Explicit per-machine capacities in words (ablations / tests).
    Custom {
        /// Capacity of each machine, in words.
        capacities: Vec<usize>,
        /// Which machine, if any, plays the "large machine" role.
        large: Option<MachineId>,
    },
}

/// What to do when a machine exceeds a capacity.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Enforcement {
    /// Return a [`ModelViolation`](crate::ModelViolation) error (default).
    #[default]
    Strict,
    /// Record the violation on the cluster and continue.
    Record,
    /// No capacity checking (still records stats).
    Off,
}

/// Configuration for a [`Cluster`](crate::Cluster).
///
/// Built with a fluent API:
///
/// ```
/// use mpc_runtime::{ClusterConfig, Topology, Enforcement};
/// let cfg = ClusterConfig::new(1_000, 16_000)
///     .topology(Topology::Heterogeneous { gamma: 0.66, large_exponent: 1.0 })
///     .enforcement(Enforcement::Strict)
///     .seed(42);
/// ```
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Number of vertices of the input graph (drives capacity formulas).
    pub n: usize,
    /// Number of edges of the input graph (drives the small-machine count).
    pub m: usize,
    /// Machine layout.
    pub topology: Topology,
    /// Capacity enforcement mode.
    pub enforcement: Enforcement,
    /// The constant `c` in capacity `c·n^γ·log₂^b n`.
    pub mem_constant: f64,
    /// The polylog exponent `b` in capacity `c·n^γ·log₂^b n`.
    pub polylog_exponent: f64,
    /// Master seed; all per-machine randomness derives from it.
    pub seed: u64,
}

impl ClusterConfig {
    /// Default heterogeneous configuration for an `n`-vertex, `m`-edge input:
    /// `γ = 0.66`, near-linear large machine, strict enforcement,
    /// `c = 6`, `b = 1.3` (the polylog budget absorbs the Θ(log n)-word flow labels).
    ///
    /// The defaults keep the model *meaningful* at simulation scale: a single
    /// log factor (`b = 1`) ensures the large machine cannot simply hold the
    /// whole input for the densities the experiments use.
    pub fn new(n: usize, m: usize) -> Self {
        ClusterConfig {
            n,
            m,
            topology: Topology::Heterogeneous {
                gamma: 0.66,
                large_exponent: 1.0,
            },
            enforcement: Enforcement::Strict,
            mem_constant: 6.0,
            polylog_exponent: 1.3,
            seed: 0xDEFA17,
        }
    }

    /// Sets the topology.
    pub fn topology(mut self, t: Topology) -> Self {
        self.topology = t;
        self
    }

    /// Sets the enforcement mode.
    pub fn enforcement(mut self, e: Enforcement) -> Self {
        self.enforcement = e;
        self
    }

    /// Sets the memory constant `c`.
    pub fn mem_constant(mut self, c: f64) -> Self {
        self.mem_constant = c;
        self
    }

    /// Sets the polylog exponent `b`.
    pub fn polylog_exponent(mut self, b: f64) -> Self {
        self.polylog_exponent = b;
        self
    }

    /// Sets the master seed.
    pub fn seed(mut self, s: u64) -> Self {
        self.seed = s;
        self
    }

    /// `log₂(n)^b`, floored at 1 (the "polylog" factor in capacities).
    pub fn polylog(&self) -> f64 {
        (self.n.max(2) as f64)
            .log2()
            .powf(self.polylog_exponent)
            .max(1.0)
    }

    /// Capacity in words of a machine with memory exponent `e`:
    /// `ceil(c · n^e · log₂^b n)`.
    pub fn capacity_for_exponent(&self, e: f64) -> usize {
        let cap = self.mem_constant * (self.n.max(2) as f64).powf(e) * self.polylog();
        cap.ceil() as usize
    }

    /// Resolves the topology into `(per-machine capacities, large machine)`.
    ///
    /// # Panics
    ///
    /// Panics on nonsensical parameters (γ outside `(0,1)`, zero machines).
    pub fn resolve(&self) -> (Vec<usize>, Option<MachineId>) {
        match &self.topology {
            Topology::Heterogeneous {
                gamma,
                large_exponent,
            } => {
                assert!((0.0..1.0).contains(gamma), "gamma must be in (0,1)");
                assert!(
                    *large_exponent >= 1.0,
                    "large machine is at least near-linear"
                );
                let small_cap = self.capacity_for_exponent(*gamma);
                let large_cap = self.capacity_for_exponent(*large_exponent);
                let k = self.small_machine_count(*gamma);
                let mut caps = vec![small_cap; k + 1];
                caps[0] = large_cap;
                (caps, Some(0))
            }
            Topology::Sublinear { gamma } => {
                assert!((0.0..1.0).contains(gamma), "gamma must be in (0,1)");
                let small_cap = self.capacity_for_exponent(*gamma);
                let k = self.small_machine_count(*gamma);
                (vec![small_cap; k], None)
            }
            Topology::NearLinear { machines } => {
                assert!(*machines > 0, "need at least one machine");
                (vec![self.capacity_for_exponent(1.0); *machines], None)
            }
            Topology::Custom { capacities, large } => {
                assert!(!capacities.is_empty(), "need at least one machine");
                if let Some(l) = large {
                    assert!(*l < capacities.len(), "large id out of range");
                }
                (capacities.clone(), *large)
            }
        }
    }

    /// `K = ceil(m / n^γ)`, floored at 2 so even tiny inputs are distributed.
    pub fn small_machine_count(&self, gamma: f64) -> usize {
        let per = (self.n.max(2) as f64).powf(gamma);
        ((self.m as f64 / per).ceil() as usize).max(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heterogeneous_resolution() {
        let cfg = ClusterConfig::new(4096, 4096 * 128);
        let (caps, large) = cfg.resolve();
        assert_eq!(large, Some(0));
        // Large machine is near-linear: comfortably above n, yet unable to
        // hold the full edge set (2 words per edge) at this density.
        assert!(caps[0] > 4096);
        assert!(caps[0] < 2 * 4096 * 128);
        // Small machines are uniform and sublinear.
        assert!(caps[1] < caps[0]);
        assert!(caps[1..].iter().all(|&c| c == caps[1]));
        // K ≈ m / n^γ.
        let k = caps.len() - 1;
        assert!(k >= 128); // at least m/n machines
    }

    #[test]
    fn sublinear_has_no_large() {
        let cfg = ClusterConfig::new(1000, 8000).topology(Topology::Sublinear { gamma: 0.5 });
        let (caps, large) = cfg.resolve();
        assert_eq!(large, None);
        assert!(caps.iter().all(|&c| c == caps[0]));
    }

    #[test]
    fn custom_roundtrips() {
        let cfg = ClusterConfig::new(10, 10).topology(Topology::Custom {
            capacities: vec![100, 10, 10],
            large: Some(0),
        });
        let (caps, large) = cfg.resolve();
        assert_eq!(caps, vec![100, 10, 10]);
        assert_eq!(large, Some(0));
    }

    #[test]
    #[should_panic]
    fn bad_gamma_panics() {
        ClusterConfig::new(10, 10)
            .topology(Topology::Heterogeneous {
                gamma: 1.5,
                large_exponent: 1.0,
            })
            .resolve();
    }

    #[test]
    fn superlinear_exponent_increases_capacity() {
        let base = ClusterConfig::new(1 << 12, 1 << 18);
        let near = base.capacity_for_exponent(1.0);
        let sup = base.capacity_for_exponent(1.2);
        assert!(sup > 4 * near);
    }
}
