//! Interned round labels: a shared prefix plus a round counter.
//!
//! The execution engine labels its exchanges `{prefix}.r{round:03}`. Doing
//! that with `format!` + `String` costs two heap allocations **per round**
//! — on the engine's hot path, at high round counts, that is measurable
//! host wall-clock (see the `hotpath` bench). A [`RoundLabel`] splits the
//! label into an interned [`Arc<str>`] prefix (allocated once per run,
//! cloned per round for the price of a reference count) and a plain
//! integer sequence number; the full string is only ever materialized for
//! display and error messages.

use std::fmt;
use std::sync::Arc;

/// A round label: an interned prefix, optionally followed by a round
/// counter rendered as `.r{seq:03}`.
///
/// Labels created from a plain `&str` (the legacy
/// [`Cluster::exchange`](crate::Cluster::exchange) path) carry the whole
/// string as the prefix and no sequence number; the engine's per-round
/// labels share one prefix allocation across every round of a run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RoundLabel {
    prefix: Arc<str>,
    seq: Option<u64>,
}

impl RoundLabel {
    /// A label with no sequence number (renders as the bare prefix).
    pub fn new(prefix: impl Into<Arc<str>>) -> Self {
        RoundLabel {
            prefix: prefix.into(),
            seq: None,
        }
    }

    /// A per-round label sharing an already-interned prefix: cloning the
    /// `Arc` is the only per-round cost.
    pub fn with_seq(prefix: &Arc<str>, seq: u64) -> Self {
        RoundLabel {
            prefix: Arc::clone(prefix),
            seq: Some(seq),
        }
    }

    /// The label's prefix (everything before the round counter).
    pub fn prefix(&self) -> &str {
        &self.prefix
    }

    /// The round counter, if this label carries one.
    pub fn seq(&self) -> Option<u64> {
        self.seq
    }

    /// The label's first dot-separated component — the key
    /// [`round_summary`](crate::Cluster::round_summary) groups by (e.g.
    /// `"mst"` for `mst.kkt.labels` and for `mst.r007` alike).
    pub fn group(&self) -> &str {
        self.prefix.split('.').next().unwrap_or(&self.prefix)
    }

    /// Whether the rendered label would be the empty string.
    pub fn is_empty(&self) -> bool {
        self.prefix.is_empty() && self.seq.is_none()
    }

    /// Materializes the full label (allocates; display/error paths only).
    pub fn render(&self) -> String {
        self.to_string()
    }
}

impl fmt::Display for RoundLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.seq {
            Some(seq) => write!(f, "{}.r{seq:03}", self.prefix),
            None => f.write_str(&self.prefix),
        }
    }
}

impl From<&str> for RoundLabel {
    fn from(s: &str) -> Self {
        RoundLabel::new(s)
    }
}

impl From<String> for RoundLabel {
    fn from(s: String) -> Self {
        RoundLabel::new(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_like_the_legacy_format() {
        let prefix: Arc<str> = Arc::from("conn");
        assert_eq!(RoundLabel::with_seq(&prefix, 7).to_string(), "conn.r007");
        assert_eq!(RoundLabel::new("mst.sort").to_string(), "mst.sort");
    }

    #[test]
    fn group_is_the_first_component() {
        let prefix: Arc<str> = Arc::from("mst.kkt");
        assert_eq!(RoundLabel::with_seq(&prefix, 1).group(), "mst");
        assert_eq!(RoundLabel::new("spanner").group(), "spanner");
    }

    #[test]
    fn equality_is_structural() {
        let p: Arc<str> = Arc::from("a");
        assert_eq!(RoundLabel::with_seq(&p, 3), RoundLabel::with_seq(&p, 3));
        assert_ne!(RoundLabel::with_seq(&p, 3), RoundLabel::new("a.r003"));
    }

    #[test]
    fn emptiness() {
        assert!(RoundLabel::new("").is_empty());
        let p: Arc<str> = Arc::from("");
        assert!(!RoundLabel::with_seq(&p, 0).is_empty());
        assert!(!RoundLabel::new("x").is_empty());
    }
}
