//! Structured engine telemetry: trace events, sinks, and exporters.
//!
//! The round-counting model answers "how many rounds"; this module answers
//! **where the time went** — per machine, per round, per pool worker. The
//! [`Cluster`](crate::Cluster) emits [`TraceEvent`]s from its exchange path
//! behind a single `Option` check (see `Cluster::set_trace_sink`), the
//! execution engine adds scheduling and worker events, and sinks turn the
//! stream into something a human or a tool can read:
//!
//! * [`RingSink`] — an in-memory ring buffer (tests, report building);
//! * [`JsonlSink`] — one JSON object per line, appended to a writer (the
//!   machine-readable trace CI validates against [`validate_jsonl_line`]);
//! * [`FanoutSink`] — duplicates events to several sinks;
//! * [`perfetto_export`] — a Chrome-trace/Perfetto JSON document with one
//!   track per simulated machine and one per pool worker, loadable at
//!   <https://ui.perfetto.dev>.
//!
//! **Overhead guarantee:** with no sink attached the hot path pays exactly
//! one branch per exchange and allocates nothing — every event struct,
//! string, and lock in this module is only touched when a sink is present.
//! Sinks must be `Send + Sync` (pool workers may record concurrently) and
//! do their own locking internally.
//!
//! Timestamps come in two flavors, deliberately kept apart: machine-side
//! events carry **simulated** seconds (the [`CostModel`](crate::CostModel)
//! durations the barrier waits on), worker-side events carry **host**
//! nanoseconds. The Perfetto exporter lays them out as two separate
//! process groups so neither timeline lies about the other.

use crate::payload::MachineId;
use std::collections::VecDeque;
use std::io::Write;
use std::sync::Mutex;

/// One telemetry event. Variants cover the three layers of the stack:
/// cluster rounds (`RoundBegin`/`MachineRound`/`RoundEnd`/`Violation`),
/// the driver's stepping schedule (`StepSchedule`), the pool's workers
/// (`WorkerRound`), and the multi-program scheduler's instance lifecycle
/// (`MuxRound`/`InstanceRetired`).
#[derive(Clone, Debug, PartialEq)]
pub enum TraceEvent {
    /// An exchange round opened (emitted before per-machine attribution).
    RoundBegin {
        /// Cluster round index (1-based, the value [`Cluster::rounds`]
        /// reports after the exchange).
        ///
        /// [`Cluster::rounds`]: crate::Cluster::rounds
        round: u64,
        /// Rendered exchange label.
        label: String,
    },
    /// Per-machine attribution for one round: traffic, charged work, the
    /// cost-model duration, and the capacity the traffic was checked
    /// against (headroom = `capacity - max(sent, recv)`).
    MachineRound {
        /// Cluster round index.
        round: u64,
        /// The machine.
        machine: MachineId,
        /// Words this machine sent this round.
        sent_words: usize,
        /// Words addressed to this machine this round.
        recv_words: usize,
        /// Local-computation words charged since the previous round.
        work: u64,
        /// Simulated seconds this machine spent (wire + compute, before
        /// the barrier wait).
        seconds: f64,
        /// Capacity in effect for this round's checks (scaled by the
        /// combined-round factor during multiplexed runs).
        capacity: usize,
    },
    /// An exchange round closed with its aggregate accounting.
    RoundEnd {
        /// Cluster round index.
        round: u64,
        /// Rendered exchange label.
        label: String,
        /// Total words moved.
        total_words: usize,
        /// Message count.
        messages: usize,
        /// Simulated round duration (the barrier waits for the slowest
        /// machine).
        makespan: f64,
    },
    /// A capacity-model violation was observed (any [`Enforcement`] mode
    /// that reports it — `Strict` before the error returns, `Record` when
    /// logged).
    ///
    /// [`Enforcement`]: crate::Enforcement
    Violation {
        /// Cluster round index at which the violation was observed.
        round: u64,
        /// Label of the offending exchange (the last exchange's label for
        /// memory violations declared between rounds).
        label: String,
        /// Violation kind (`send_overflow`, `recv_overflow`,
        /// `memory_overflow`, `unknown_machine`).
        kind: &'static str,
        /// Human-readable description.
        message: String,
    },
    /// The driver's per-round stepping schedule: how many machines step
    /// this round vs. sit idle (halted with an empty inbox).
    StepSchedule {
        /// Driver round index (0-based program clock).
        round: u64,
        /// Machines stepped this round.
        stepping: usize,
        /// Total machines.
        machines: usize,
    },
    /// One pool worker's accounting for one round: what it claimed, what
    /// it actually stepped, how long it waited at the round barrier, and
    /// how long it spent in the claim loop.
    WorkerRound {
        /// Driver round index.
        round: u64,
        /// Worker index within the pool.
        worker: usize,
        /// Machine indices this worker claimed off the shared counter.
        claimed: usize,
        /// Claimed machines that were active and actually stepped.
        stepped: usize,
        /// Claimed machines skipped because they were idle.
        idle_skips: usize,
        /// Host nanoseconds blocked at the round-start barrier.
        wait_ns: u64,
        /// Host nanoseconds spent in the claim loop (stepping + skipping).
        busy_ns: u64,
    },
    /// Per-machine instance attribution of a multiplexed (batched) round.
    MuxRound {
        /// Driver round index.
        round: u64,
        /// The machine.
        machine: MachineId,
        /// Instances that stepped on this machine this round.
        live: usize,
        /// Instances retired on this machine so far.
        retired: usize,
    },
    /// A multiplexed instance was retired by a controller on this machine
    /// (force-halted; its staged outbox was discarded).
    InstanceRetired {
        /// Driver round index.
        round: u64,
        /// The machine whose controller retired the instance.
        machine: MachineId,
        /// The retired instance's id.
        instance: u32,
    },
    /// A queued job was admitted into the running mixed wave by the
    /// service scheduler (its lanes installed on every machine).
    JobAdmitted {
        /// Driver round index at which the job's lanes start stepping.
        round: u64,
        /// Service-assigned job id (submission order).
        job: u64,
        /// Registry name of the admitted algorithm.
        name: String,
        /// Combined-round capacity shares this job holds while running.
        shares: usize,
    },
    /// A job's lanes were retired from the wave and its result extracted.
    JobCompleted {
        /// Driver round index at which the job was observed complete.
        round: u64,
        /// Service-assigned job id.
        job: u64,
        /// Driver rounds between admission and completion.
        rounds: u64,
        /// Whether result extraction failed (job-level algorithm error).
        failed: bool,
    },
    /// A running job was cancelled by the service: its lanes were force
    /// retired, its in-flight mail purged, and its capacity shares
    /// refunded to the admission queue (DESIGN.md §2.9).
    JobQuarantined {
        /// Service round index (monotone across wave restarts).
        round: u64,
        /// Service-assigned job id.
        job: u64,
        /// Why the job was pulled (`deadline`, or the engine error
        /// attributed to it).
        reason: String,
    },
    /// A quarantined job was resubmitted to the queue for another
    /// admission attempt (after its linear backoff elapses).
    JobRetried {
        /// Service round index the resubmission happened on.
        round: u64,
        /// Service-assigned job id.
        job: u64,
        /// The attempt the resubmission will consume (2-based: the first
        /// admission was attempt 1).
        attempt: u64,
    },
    /// A job exhausted its retry policy (or was admitted with a zero
    /// budget) and completed as failed; the run continued without it.
    JobFailed {
        /// Service round index of the terminal failure.
        round: u64,
        /// Service-assigned job id.
        job: u64,
        /// The underlying engine error, rendered.
        error: String,
    },
    /// A scheduled [`Fault`](crate::fault::Fault) fired during an exchange.
    FaultInjected {
        /// Cluster round index the fault fired on.
        round: u64,
        /// Fault kind (`crash`, `drop_exchange`, `delay_round`,
        /// `slowdown`).
        kind: &'static str,
        /// Human-readable fault description.
        detail: String,
    },
    /// A machine was quarantined after a crash: the driver has pulled it
    /// from the schedule pending shard recovery.
    MachineQuarantined {
        /// Cluster round index of the crashing exchange.
        round: u64,
        /// The quarantined machine.
        machine: MachineId,
    },
    /// One machine's shard was restored from a replica and its lost rounds
    /// replayed.
    RecoveryRound {
        /// Cluster round index the recovery exchange committed on.
        round: u64,
        /// The recovered machine.
        machine: MachineId,
        /// Driver rounds replayed from the checkpoint.
        replayed: u64,
        /// Recovery attempt number (1-based; >1 means earlier attempts
        /// were themselves disrupted).
        attempt: usize,
    },
}

impl TraceEvent {
    /// The event's type tag — the `"type"` field of its JSONL encoding.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::RoundBegin { .. } => "round_begin",
            TraceEvent::MachineRound { .. } => "machine_round",
            TraceEvent::RoundEnd { .. } => "round_end",
            TraceEvent::Violation { .. } => "violation",
            TraceEvent::StepSchedule { .. } => "step_schedule",
            TraceEvent::WorkerRound { .. } => "worker_round",
            TraceEvent::MuxRound { .. } => "mux_round",
            TraceEvent::InstanceRetired { .. } => "instance_retired",
            TraceEvent::JobAdmitted { .. } => "job_admitted",
            TraceEvent::JobCompleted { .. } => "job_completed",
            TraceEvent::JobQuarantined { .. } => "job_quarantined",
            TraceEvent::JobRetried { .. } => "job_retried",
            TraceEvent::JobFailed { .. } => "job_failed",
            TraceEvent::FaultInjected { .. } => "fault_injected",
            TraceEvent::MachineQuarantined { .. } => "machine_quarantined",
            TraceEvent::RecoveryRound { .. } => "recovery_round",
        }
    }

    /// The event as one JSON object (no trailing newline) — the JSONL
    /// wire format [`JsonlSink`] writes and [`validate_jsonl_line`]
    /// checks.
    pub fn to_json(&self) -> String {
        match self {
            TraceEvent::RoundBegin { round, label } => format!(
                "{{\"type\":\"round_begin\",\"round\":{round},\"label\":{}}}",
                json_string(label)
            ),
            TraceEvent::MachineRound {
                round,
                machine,
                sent_words,
                recv_words,
                work,
                seconds,
                capacity,
            } => format!(
                "{{\"type\":\"machine_round\",\"round\":{round},\"machine\":{machine},\
                 \"sent_words\":{sent_words},\"recv_words\":{recv_words},\"work\":{work},\
                 \"seconds\":{},\"capacity\":{capacity}}}",
                json_f64(*seconds)
            ),
            TraceEvent::RoundEnd {
                round,
                label,
                total_words,
                messages,
                makespan,
            } => format!(
                "{{\"type\":\"round_end\",\"round\":{round},\"label\":{},\
                 \"total_words\":{total_words},\"messages\":{messages},\"makespan\":{}}}",
                json_string(label),
                json_f64(*makespan)
            ),
            TraceEvent::Violation {
                round,
                label,
                kind,
                message,
            } => format!(
                "{{\"type\":\"violation\",\"round\":{round},\"label\":{},\
                 \"kind\":{},\"message\":{}}}",
                json_string(label),
                json_string(kind),
                json_string(message)
            ),
            TraceEvent::StepSchedule {
                round,
                stepping,
                machines,
            } => format!(
                "{{\"type\":\"step_schedule\",\"round\":{round},\
                 \"stepping\":{stepping},\"machines\":{machines}}}"
            ),
            TraceEvent::WorkerRound {
                round,
                worker,
                claimed,
                stepped,
                idle_skips,
                wait_ns,
                busy_ns,
            } => format!(
                "{{\"type\":\"worker_round\",\"round\":{round},\"worker\":{worker},\
                 \"claimed\":{claimed},\"stepped\":{stepped},\"idle_skips\":{idle_skips},\
                 \"wait_ns\":{wait_ns},\"busy_ns\":{busy_ns}}}"
            ),
            TraceEvent::MuxRound {
                round,
                machine,
                live,
                retired,
            } => format!(
                "{{\"type\":\"mux_round\",\"round\":{round},\"machine\":{machine},\
                 \"live\":{live},\"retired\":{retired}}}"
            ),
            TraceEvent::InstanceRetired {
                round,
                machine,
                instance,
            } => format!(
                "{{\"type\":\"instance_retired\",\"round\":{round},\
                 \"machine\":{machine},\"instance\":{instance}}}"
            ),
            TraceEvent::JobAdmitted {
                round,
                job,
                name,
                shares,
            } => format!(
                "{{\"type\":\"job_admitted\",\"round\":{round},\"job\":{job},\
                 \"name\":{},\"shares\":{shares}}}",
                json_string(name)
            ),
            TraceEvent::JobCompleted {
                round,
                job,
                rounds,
                failed,
            } => format!(
                "{{\"type\":\"job_completed\",\"round\":{round},\"job\":{job},\
                 \"rounds\":{rounds},\"failed\":{failed}}}"
            ),
            TraceEvent::JobQuarantined { round, job, reason } => format!(
                "{{\"type\":\"job_quarantined\",\"round\":{round},\"job\":{job},\
                 \"reason\":{}}}",
                json_string(reason)
            ),
            TraceEvent::JobRetried {
                round,
                job,
                attempt,
            } => format!(
                "{{\"type\":\"job_retried\",\"round\":{round},\"job\":{job},\
                 \"attempt\":{attempt}}}"
            ),
            TraceEvent::JobFailed { round, job, error } => format!(
                "{{\"type\":\"job_failed\",\"round\":{round},\"job\":{job},\
                 \"error\":{}}}",
                json_string(error)
            ),
            TraceEvent::FaultInjected {
                round,
                kind,
                detail,
            } => format!(
                "{{\"type\":\"fault_injected\",\"round\":{round},\
                 \"kind\":{},\"detail\":{}}}",
                json_string(kind),
                json_string(detail)
            ),
            TraceEvent::MachineQuarantined { round, machine } => format!(
                "{{\"type\":\"machine_quarantined\",\"round\":{round},\
                 \"machine\":{machine}}}"
            ),
            TraceEvent::RecoveryRound {
                round,
                machine,
                replayed,
                attempt,
            } => format!(
                "{{\"type\":\"recovery_round\",\"round\":{round},\
                 \"machine\":{machine},\"replayed\":{replayed},\"attempt\":{attempt}}}"
            ),
        }
    }
}

/// A telemetry consumer. Implementations do their own synchronization
/// (`record` takes `&self` and may be called from pool worker threads)
/// and must never panic on the recording path — a broken sink must not
/// take the engine down with it.
pub trait TraceSink: Send + Sync {
    /// Records one event. Borrowed, so a disabled or full sink can decline
    /// without the producer having paid for an allocation.
    fn record(&self, event: &TraceEvent);
}

// ---------------------------------------------------------------------------
// RingSink
// ---------------------------------------------------------------------------

struct RingInner {
    buf: VecDeque<TraceEvent>,
    capacity: Option<usize>,
    dropped: u64,
}

/// An in-memory ring-buffer sink: keeps the most recent `capacity` events
/// (or everything, when unbounded). The sink the tests and the
/// report-builder use.
pub struct RingSink {
    inner: Mutex<RingInner>,
}

impl RingSink {
    /// A ring that keeps every event (report building over full runs).
    pub fn unbounded() -> Self {
        RingSink {
            inner: Mutex::new(RingInner {
                buf: VecDeque::new(),
                capacity: None,
                dropped: 0,
            }),
        }
    }

    /// A ring keeping only the most recent `capacity` events; older events
    /// are dropped (and counted) — the crash-dump configuration.
    ///
    /// # Panics
    ///
    /// Panics on zero capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(
            capacity > 0,
            "ring sink needs capacity for at least one event"
        );
        RingSink {
            inner: Mutex::new(RingInner {
                buf: VecDeque::with_capacity(capacity),
                capacity: Some(capacity),
                dropped: 0,
            }),
        }
    }

    /// Events recorded so far (oldest first), cloned out.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.inner.lock().unwrap().buf.iter().cloned().collect()
    }

    /// Drains and returns all buffered events (oldest first).
    pub fn take(&self) -> Vec<TraceEvent> {
        self.inner.lock().unwrap().buf.drain(..).collect()
    }

    /// Number of events currently buffered.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().buf.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().unwrap().dropped
    }
}

impl TraceSink for RingSink {
    fn record(&self, event: &TraceEvent) {
        let mut inner = self.inner.lock().unwrap();
        if let Some(cap) = inner.capacity {
            while inner.buf.len() >= cap {
                inner.buf.pop_front();
                inner.dropped += 1;
            }
        }
        inner.buf.push_back(event.clone());
    }
}

// ---------------------------------------------------------------------------
// JsonlSink
// ---------------------------------------------------------------------------

/// A line-per-event JSON sink over any writer. Lines follow the schema
/// [`validate_jsonl_line`] checks (CI runs the registry smoke with this
/// sink attached and validates the emitted trace).
pub struct JsonlSink {
    out: Mutex<Box<dyn Write + Send>>,
}

impl JsonlSink {
    /// Wraps an arbitrary writer.
    pub fn new(writer: Box<dyn Write + Send>) -> Self {
        JsonlSink {
            out: Mutex::new(writer),
        }
    }

    /// Creates (truncates) `path` and writes events to it.
    ///
    /// # Errors
    ///
    /// Propagates the file-creation error.
    pub fn create(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(Self::new(Box::new(std::io::BufWriter::new(file))))
    }

    /// Flushes the underlying writer (also happens on drop).
    pub fn flush(&self) {
        let _ = self.out.lock().unwrap().flush();
    }
}

impl TraceSink for JsonlSink {
    fn record(&self, event: &TraceEvent) {
        let line = event.to_json();
        let mut out = self.out.lock().unwrap();
        // A full disk must not panic the engine mid-round; the trace is
        // best-effort by contract.
        let _ = writeln!(out, "{line}");
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        if let Ok(mut out) = self.out.lock() {
            let _ = out.flush();
        }
    }
}

// ---------------------------------------------------------------------------
// FanoutSink
// ---------------------------------------------------------------------------

/// Duplicates every event to each inner sink, in order — how a caller
/// composes its own sink with the report-builder's ring.
pub struct FanoutSink {
    sinks: Vec<std::sync::Arc<dyn TraceSink>>,
}

impl FanoutSink {
    /// A fanout over `sinks`.
    pub fn new(sinks: Vec<std::sync::Arc<dyn TraceSink>>) -> Self {
        FanoutSink { sinks }
    }
}

impl TraceSink for FanoutSink {
    fn record(&self, event: &TraceEvent) {
        for sink in &self.sinks {
            sink.record(event);
        }
    }
}

// ---------------------------------------------------------------------------
// JSON helpers (the vendored offline deps include no JSON library)
// ---------------------------------------------------------------------------

/// Escapes `s` as a JSON string literal (with quotes).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders an `f64` as a JSON number (JSON has no NaN/Infinity; those
/// degrade to large sentinels rather than corrupting the document).
pub fn json_f64(x: f64) -> String {
    if x.is_nan() {
        return "0".to_string();
    }
    if x.is_infinite() {
        return if x > 0.0 { "1e308" } else { "-1e308" }.to_string();
    }
    let mut s = format!("{x}");
    // `{}` on a whole f64 prints no decimal point; that is still valid
    // JSON, keep it.
    if s == "-0" {
        s = "0".to_string();
    }
    s
}

/// A minimal parsed JSON value — just enough structure for schema checks
/// and the Perfetto round-trip tests; not a general-purpose library.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as f64).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in source order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses a complete JSON document (rejects trailing garbage).
///
/// # Errors
///
/// A human-readable description of the first syntax error.
pub fn parse_json(input: &str) -> Result<JsonValue, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(bytes, pos);
    let Some(&c) = bytes.get(*pos) else {
        return Err("unexpected end of input".to_string());
    };
    match c {
        b'{' => parse_object(bytes, pos),
        b'[' => parse_array(bytes, pos),
        b'"' => Ok(JsonValue::Str(parse_string(bytes, pos)?)),
        b't' => parse_lit(bytes, pos, "true", JsonValue::Bool(true)),
        b'f' => parse_lit(bytes, pos, "false", JsonValue::Bool(false)),
        b'n' => parse_lit(bytes, pos, "null", JsonValue::Null),
        b'-' | b'0'..=b'9' => parse_number(bytes, pos),
        other => Err(format!("unexpected byte '{}' at {}", other as char, *pos)),
    }
}

fn parse_lit(
    bytes: &[u8],
    pos: &mut usize,
    lit: &str,
    value: JsonValue,
) -> Result<JsonValue, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| "bad utf8".to_string())?;
    text.parse::<f64>()
        .map(JsonValue::Num)
        .map_err(|_| format!("invalid number '{text}' at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        let Some(&c) = bytes.get(*pos) else {
            return Err("unterminated string".to_string());
        };
        *pos += 1;
        match c {
            b'"' => return Ok(out),
            b'\\' => {
                let Some(&esc) = bytes.get(*pos) else {
                    return Err("unterminated escape".to_string());
                };
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let hex =
                            std::str::from_utf8(hex).map_err(|_| "bad utf8 in \\u".to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape '{hex}'"))?;
                        *pos += 4;
                        // Surrogate pairs are not needed for our own traces;
                        // map unpaired surrogates to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(format!("bad escape '\\{}'", other as char)),
                }
            }
            c if c < 0x20 => return Err("raw control character in string".to_string()),
            _ => {
                // Re-assemble multi-byte UTF-8 starting at c.
                let start = *pos - 1;
                let len = utf8_len(c);
                let chunk = bytes
                    .get(start..start + len)
                    .ok_or_else(|| "truncated utf8".to_string())?;
                let s = std::str::from_utf8(chunk).map_err(|_| "bad utf8".to_string())?;
                out.push_str(s);
                *pos = start + len;
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(&b',') => *pos += 1,
            Some(&b']') => {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    *pos += 1; // '{'
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {}", *pos));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {}", *pos));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(&b',') => *pos += 1,
            Some(&b'}') => {
                *pos += 1;
                return Ok(JsonValue::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

// ---------------------------------------------------------------------------
// JSONL schema validation
// ---------------------------------------------------------------------------

/// Required numeric fields per event type — the JSONL schema, stated once
/// so the emitter ([`TraceEvent::to_json`]) and the validator cannot
/// drift apart silently (the unit tests emit every variant and validate).
const SCHEMA: &[(&str, &[&str], &[&str])] = &[
    // (type, required number fields, required string fields)
    ("round_begin", &["round"], &["label"]),
    (
        "machine_round",
        &[
            "round",
            "machine",
            "sent_words",
            "recv_words",
            "work",
            "seconds",
            "capacity",
        ],
        &[],
    ),
    (
        "round_end",
        &["round", "total_words", "messages", "makespan"],
        &["label"],
    ),
    ("violation", &["round"], &["label", "kind", "message"]),
    ("step_schedule", &["round", "stepping", "machines"], &[]),
    (
        "worker_round",
        &[
            "round",
            "worker",
            "claimed",
            "stepped",
            "idle_skips",
            "wait_ns",
            "busy_ns",
        ],
        &[],
    ),
    ("mux_round", &["round", "machine", "live", "retired"], &[]),
    ("instance_retired", &["round", "machine", "instance"], &[]),
    ("job_admitted", &["round", "job", "shares"], &["name"]),
    // `failed` is a JSON bool, which the validator's number/string floor
    // does not cover — it rides along as an allowed extra field.
    ("job_completed", &["round", "job", "rounds"], &[]),
    ("job_quarantined", &["round", "job"], &["reason"]),
    ("job_retried", &["round", "job", "attempt"], &[]),
    ("job_failed", &["round", "job"], &["error"]),
    ("fault_injected", &["round"], &["kind", "detail"]),
    ("machine_quarantined", &["round", "machine"], &[]),
    (
        "recovery_round",
        &["round", "machine", "replayed", "attempt"],
        &[],
    ),
];

/// Validates one JSONL trace line against the event schema: it must be a
/// JSON object with a known `"type"` and every field that type requires,
/// with the right JSON types.
///
/// # Errors
///
/// A description of the first problem found.
pub fn validate_jsonl_line(line: &str) -> Result<(), String> {
    let value = parse_json(line)?;
    let ty = value
        .get("type")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| "missing string field \"type\"".to_string())?;
    let Some((_, nums, strs)) = SCHEMA.iter().find(|(t, _, _)| *t == ty) else {
        return Err(format!("unknown event type \"{ty}\""));
    };
    for field in *nums {
        if value.get(field).and_then(JsonValue::as_f64).is_none() {
            return Err(format!("event \"{ty}\": missing number field \"{field}\""));
        }
    }
    for field in *strs {
        if value.get(field).and_then(JsonValue::as_str).is_none() {
            return Err(format!("event \"{ty}\": missing string field \"{field}\""));
        }
    }
    Ok(())
}

/// Validates a whole JSONL document (blank lines are skipped); returns the
/// number of events checked.
///
/// # Errors
///
/// The first invalid line, with its 1-based line number.
pub fn validate_jsonl(body: &str) -> Result<usize, String> {
    let mut checked = 0usize;
    for (i, line) in body.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        validate_jsonl_line(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        checked += 1;
    }
    Ok(checked)
}

// ---------------------------------------------------------------------------
// Perfetto / Chrome-trace export
// ---------------------------------------------------------------------------

/// Synthetic process ids of the exported trace: simulated machine tracks
/// vs. host-time pool-worker tracks (two timelines, kept apart).
const PID_MACHINES: u64 = 1;
/// See [`PID_MACHINES`].
const PID_WORKERS: u64 = 2;
/// Thread id of the per-round span track within the machines process.
const TID_ROUNDS: u64 = 1_000_000;

/// Exports events as a Chrome-trace/Perfetto JSON document (load at
/// <https://ui.perfetto.dev> or `chrome://tracing`).
///
/// Layout: process [`PID_MACHINES`] carries one track per simulated
/// machine (slice = that machine's cost-model duration per round, on the
/// simulated timeline, µs = simulated seconds × 10⁶) plus one
/// whole-round track; process [`PID_WORKERS`] carries one track per pool
/// worker with alternating `barrier-wait` / `round` slices on the host
/// timeline. Instance retirements and violations appear as instant
/// events on the owning track.
pub fn perfetto_export(events: &[TraceEvent]) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    let mut first = true;
    let push = |line: String, out: &mut String, first: &mut bool| {
        if !*first {
            out.push_str(",\n");
        }
        out.push_str(&line);
        *first = false;
    };

    // Metadata: name the two processes.
    for (pid, name) in [
        (PID_MACHINES, "cluster (simulated time)"),
        (PID_WORKERS, "worker pool (host time)"),
    ] {
        push(
            format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
                 \"args\":{{\"name\":{}}}}}",
                json_string(name)
            ),
            &mut out,
            &mut first,
        );
    }
    push(
        format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{PID_MACHINES},\
             \"tid\":{TID_ROUNDS},\"args\":{{\"name\":\"rounds\"}}}}"
        ),
        &mut out,
        &mut first,
    );

    // Simulated timeline: cumulative makespan cursor; per-round slices for
    // each machine start at the round's open.
    let mut sim_cursor_us = 0.0f64;
    let mut named_machines: Vec<MachineId> = Vec::new();
    let mut named_workers: Vec<usize> = Vec::new();
    // Host timeline per worker: cumulative wait+busy cursor.
    let mut worker_cursor_us: Vec<f64> = Vec::new();
    // Driver rounds and cluster rounds tick at (almost) the same cadence;
    // instance/mux events use the simulated cursor of the *current* round.

    for event in events {
        match event {
            TraceEvent::RoundBegin { .. } => {}
            TraceEvent::MachineRound {
                round,
                machine,
                sent_words,
                recv_words,
                work,
                seconds,
                capacity,
            } => {
                if !named_machines.contains(machine) {
                    named_machines.push(*machine);
                    push(
                        format!(
                            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{PID_MACHINES},\
                             \"tid\":{machine},\"args\":{{\"name\":\"machine {machine}\"}}}}"
                        ),
                        &mut out,
                        &mut first,
                    );
                }
                let headroom = capacity.saturating_sub(*sent_words.max(recv_words));
                push(
                    format!(
                        "{{\"name\":\"r{round}\",\"ph\":\"X\",\"pid\":{PID_MACHINES},\
                         \"tid\":{machine},\"ts\":{},\"dur\":{},\"args\":{{\
                         \"sent_words\":{sent_words},\"recv_words\":{recv_words},\
                         \"work\":{work},\"capacity\":{capacity},\"headroom\":{headroom}}}}}",
                        json_f64(sim_cursor_us),
                        json_f64(seconds * 1e6)
                    ),
                    &mut out,
                    &mut first,
                );
            }
            TraceEvent::RoundEnd {
                round,
                label,
                total_words,
                messages,
                makespan,
            } => {
                push(
                    format!(
                        "{{\"name\":{},\"ph\":\"X\",\"pid\":{PID_MACHINES},\
                         \"tid\":{TID_ROUNDS},\"ts\":{},\"dur\":{},\"args\":{{\
                         \"round\":{round},\"total_words\":{total_words},\
                         \"messages\":{messages}}}}}",
                        json_string(label),
                        json_f64(sim_cursor_us),
                        json_f64(makespan * 1e6)
                    ),
                    &mut out,
                    &mut first,
                );
                sim_cursor_us += makespan * 1e6;
            }
            TraceEvent::Violation {
                round,
                label,
                kind,
                message,
            } => {
                push(
                    format!(
                        "{{\"name\":{},\"ph\":\"i\",\"s\":\"p\",\"pid\":{PID_MACHINES},\
                         \"tid\":{TID_ROUNDS},\"ts\":{},\"args\":{{\"round\":{round},\
                         \"label\":{},\"message\":{}}}}}",
                        json_string(&format!("violation:{kind}")),
                        json_f64(sim_cursor_us),
                        json_string(label),
                        json_string(message)
                    ),
                    &mut out,
                    &mut first,
                );
            }
            TraceEvent::StepSchedule { .. } => {}
            TraceEvent::WorkerRound {
                round,
                worker,
                claimed,
                stepped,
                idle_skips,
                wait_ns,
                busy_ns,
            } => {
                if worker_cursor_us.len() <= *worker {
                    worker_cursor_us.resize(worker + 1, 0.0);
                }
                if !named_workers.contains(worker) {
                    named_workers.push(*worker);
                    push(
                        format!(
                            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{PID_WORKERS},\
                             \"tid\":{worker},\"args\":{{\"name\":\"worker {worker}\"}}}}"
                        ),
                        &mut out,
                        &mut first,
                    );
                }
                let wait_us = *wait_ns as f64 / 1e3;
                let busy_us = *busy_ns as f64 / 1e3;
                push(
                    format!(
                        "{{\"name\":\"barrier-wait\",\"ph\":\"X\",\"pid\":{PID_WORKERS},\
                         \"tid\":{worker},\"ts\":{},\"dur\":{},\"args\":{{\"round\":{round}}}}}",
                        json_f64(worker_cursor_us[*worker]),
                        json_f64(wait_us)
                    ),
                    &mut out,
                    &mut first,
                );
                worker_cursor_us[*worker] += wait_us;
                push(
                    format!(
                        "{{\"name\":\"r{round}\",\"ph\":\"X\",\"pid\":{PID_WORKERS},\
                         \"tid\":{worker},\"ts\":{},\"dur\":{},\"args\":{{\
                         \"claimed\":{claimed},\"stepped\":{stepped},\
                         \"idle_skips\":{idle_skips}}}}}",
                        json_f64(worker_cursor_us[*worker]),
                        json_f64(busy_us)
                    ),
                    &mut out,
                    &mut first,
                );
                worker_cursor_us[*worker] += busy_us;
            }
            TraceEvent::MuxRound { .. } => {}
            TraceEvent::InstanceRetired {
                round,
                machine,
                instance,
            } => {
                push(
                    format!(
                        "{{\"name\":\"retire instance {instance}\",\"ph\":\"i\",\"s\":\"t\",\
                         \"pid\":{PID_MACHINES},\"tid\":{machine},\"ts\":{},\
                         \"args\":{{\"round\":{round}}}}}",
                        json_f64(sim_cursor_us)
                    ),
                    &mut out,
                    &mut first,
                );
            }
            TraceEvent::JobAdmitted {
                round,
                job,
                name,
                shares,
            } => {
                push(
                    format!(
                        "{{\"name\":{},\"ph\":\"i\",\"s\":\"p\",\"pid\":{PID_MACHINES},\
                         \"tid\":{TID_ROUNDS},\"ts\":{},\"args\":{{\"round\":{round},\
                         \"job\":{job},\"shares\":{shares}}}}}",
                        json_string(&format!("admit job {job} ({name})")),
                        json_f64(sim_cursor_us)
                    ),
                    &mut out,
                    &mut first,
                );
            }
            TraceEvent::JobCompleted {
                round,
                job,
                rounds,
                failed,
            } => {
                push(
                    format!(
                        "{{\"name\":\"complete job {job}\",\"ph\":\"i\",\"s\":\"p\",\
                         \"pid\":{PID_MACHINES},\"tid\":{TID_ROUNDS},\"ts\":{},\
                         \"args\":{{\"round\":{round},\"rounds\":{rounds},\
                         \"failed\":{failed}}}}}",
                        json_f64(sim_cursor_us)
                    ),
                    &mut out,
                    &mut first,
                );
            }
            TraceEvent::JobQuarantined { round, job, reason } => {
                push(
                    format!(
                        "{{\"name\":\"quarantine job {job}\",\"ph\":\"i\",\"s\":\"p\",\
                         \"pid\":{PID_MACHINES},\"tid\":{TID_ROUNDS},\"ts\":{},\
                         \"args\":{{\"round\":{round},\"reason\":{}}}}}",
                        json_f64(sim_cursor_us),
                        json_string(reason)
                    ),
                    &mut out,
                    &mut first,
                );
            }
            TraceEvent::JobRetried {
                round,
                job,
                attempt,
            } => {
                push(
                    format!(
                        "{{\"name\":\"retry job {job}\",\"ph\":\"i\",\"s\":\"p\",\
                         \"pid\":{PID_MACHINES},\"tid\":{TID_ROUNDS},\"ts\":{},\
                         \"args\":{{\"round\":{round},\"attempt\":{attempt}}}}}",
                        json_f64(sim_cursor_us)
                    ),
                    &mut out,
                    &mut first,
                );
            }
            TraceEvent::JobFailed { round, job, error } => {
                push(
                    format!(
                        "{{\"name\":\"fail job {job}\",\"ph\":\"i\",\"s\":\"p\",\
                         \"pid\":{PID_MACHINES},\"tid\":{TID_ROUNDS},\"ts\":{},\
                         \"args\":{{\"round\":{round},\"error\":{}}}}}",
                        json_f64(sim_cursor_us),
                        json_string(error)
                    ),
                    &mut out,
                    &mut first,
                );
            }
            TraceEvent::FaultInjected {
                round,
                kind,
                detail,
            } => {
                push(
                    format!(
                        "{{\"name\":{},\"ph\":\"i\",\"s\":\"p\",\"pid\":{PID_MACHINES},\
                         \"tid\":{TID_ROUNDS},\"ts\":{},\"args\":{{\"round\":{round},\
                         \"detail\":{}}}}}",
                        json_string(&format!("fault:{kind}")),
                        json_f64(sim_cursor_us),
                        json_string(detail)
                    ),
                    &mut out,
                    &mut first,
                );
            }
            TraceEvent::MachineQuarantined { round, machine } => {
                push(
                    format!(
                        "{{\"name\":\"quarantine machine {machine}\",\"ph\":\"i\",\"s\":\"p\",\
                         \"pid\":{PID_MACHINES},\"tid\":{TID_ROUNDS},\"ts\":{},\
                         \"args\":{{\"round\":{round}}}}}",
                        json_f64(sim_cursor_us)
                    ),
                    &mut out,
                    &mut first,
                );
            }
            TraceEvent::RecoveryRound {
                round,
                machine,
                replayed,
                attempt,
            } => {
                push(
                    format!(
                        "{{\"name\":\"recover machine {machine}\",\"ph\":\"i\",\"s\":\"p\",\
                         \"pid\":{PID_MACHINES},\"tid\":{TID_ROUNDS},\"ts\":{},\
                         \"args\":{{\"round\":{round},\"replayed\":{replayed},\
                         \"attempt\":{attempt}}}}}",
                        json_f64(sim_cursor_us)
                    ),
                    &mut out,
                    &mut first,
                );
            }
        }
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::RoundBegin {
                round: 1,
                label: "t.r000".into(),
            },
            TraceEvent::MachineRound {
                round: 1,
                machine: 0,
                sent_words: 3,
                recv_words: 1,
                work: 7,
                seconds: 4.0,
                capacity: 100,
            },
            TraceEvent::MachineRound {
                round: 1,
                machine: 1,
                sent_words: 1,
                recv_words: 3,
                work: 0,
                seconds: 4.0,
                capacity: 20,
            },
            TraceEvent::RoundEnd {
                round: 1,
                label: "t.r000".into(),
                total_words: 4,
                messages: 2,
                makespan: 4.0,
            },
            TraceEvent::Violation {
                round: 1,
                label: "t.r000".into(),
                kind: "send_overflow",
                message: "machine 1 sent 25 words".into(),
            },
            TraceEvent::StepSchedule {
                round: 0,
                stepping: 2,
                machines: 2,
            },
            TraceEvent::WorkerRound {
                round: 0,
                worker: 0,
                claimed: 2,
                stepped: 1,
                idle_skips: 1,
                wait_ns: 1500,
                busy_ns: 9000,
            },
            TraceEvent::MuxRound {
                round: 0,
                machine: 0,
                live: 3,
                retired: 1,
            },
            TraceEvent::InstanceRetired {
                round: 0,
                machine: 0,
                instance: 2,
            },
            TraceEvent::JobAdmitted {
                round: 0,
                job: 1,
                name: "spanner".into(),
                shares: 2,
            },
            TraceEvent::JobCompleted {
                round: 4,
                job: 1,
                rounds: 4,
                failed: false,
            },
            TraceEvent::JobQuarantined {
                round: 5,
                job: 2,
                reason: "deadline".into(),
            },
            TraceEvent::JobRetried {
                round: 7,
                job: 2,
                attempt: 2,
            },
            TraceEvent::JobFailed {
                round: 9,
                job: 2,
                error: "machine 1 unrecoverable at driver round 4: retries exhausted".into(),
            },
            TraceEvent::FaultInjected {
                round: 3,
                kind: "crash",
                detail: "machine 1 crashes (scheduled round 3)".into(),
            },
            TraceEvent::MachineQuarantined {
                round: 3,
                machine: 1,
            },
            TraceEvent::RecoveryRound {
                round: 5,
                machine: 1,
                replayed: 2,
                attempt: 1,
            },
        ]
    }

    #[test]
    fn every_variant_emits_schema_valid_jsonl() {
        for event in sample_events() {
            let line = event.to_json();
            validate_jsonl_line(&line).unwrap_or_else(|e| panic!("{line}: {e}"));
            // And the parsed type tag matches the variant's kind.
            let parsed = parse_json(&line).unwrap();
            assert_eq!(parsed.get("type").unwrap().as_str().unwrap(), event.kind());
        }
    }

    #[test]
    fn validator_rejects_missing_fields_and_unknown_types() {
        assert!(validate_jsonl_line("{\"type\":\"round_begin\"}").is_err());
        assert!(validate_jsonl_line("{\"type\":\"nope\",\"round\":1}").is_err());
        assert!(validate_jsonl_line("not json").is_err());
        // Extra fields are allowed (the schema is a floor, not a ceiling).
        assert!(validate_jsonl_line(
            "{\"type\":\"step_schedule\",\"round\":1,\"stepping\":2,\"machines\":4,\"x\":1}"
        )
        .is_ok());
    }

    #[test]
    fn ring_sink_caps_and_counts_drops() {
        let ring = RingSink::with_capacity(3);
        for round in 0..5 {
            ring.record(&TraceEvent::RoundBegin {
                round,
                label: "x".into(),
            });
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 2);
        let events = ring.take();
        assert!(matches!(events[0], TraceEvent::RoundBegin { round: 2, .. }));
        assert!(ring.is_empty());
    }

    #[test]
    fn fanout_duplicates_to_every_sink() {
        let a = Arc::new(RingSink::unbounded());
        let b = Arc::new(RingSink::unbounded());
        let fan = FanoutSink::new(vec![a.clone(), b.clone()]);
        fan.record(&TraceEvent::StepSchedule {
            round: 0,
            stepping: 1,
            machines: 1,
        });
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn jsonl_sink_writes_validating_lines() {
        let path = std::env::temp_dir().join("mpc_telemetry_jsonl_test.jsonl");
        {
            let sink = JsonlSink::create(&path).unwrap();
            for event in sample_events() {
                sink.record(&event);
            }
            sink.flush();
        }
        let body = std::fs::read_to_string(&path).unwrap();
        assert_eq!(validate_jsonl(&body).unwrap(), sample_events().len());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn json_parser_handles_nesting_escapes_and_errors() {
        let v = parse_json(r#"{"a":[1,2.5,-3e2],"b":"x\"\nA","c":{"d":null,"e":true}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("b").unwrap().as_str().unwrap(), "x\"\nA");
        assert_eq!(v.get("c").unwrap().get("d"), Some(&JsonValue::Null));
        assert!(parse_json("{\"a\":1,}").is_err());
        assert!(parse_json("[1 2]").is_err());
        assert!(parse_json("{}extra").is_err());
        // Round-trip our own escaper.
        let s = "weird \"label\"\twith\nnewlines\\";
        let parsed = parse_json(&json_string(s)).unwrap();
        assert_eq!(parsed.as_str().unwrap(), s);
    }

    #[test]
    fn perfetto_export_is_valid_json_with_both_process_tracks() {
        let doc = perfetto_export(&sample_events());
        let parsed = parse_json(&doc).expect("perfetto export must parse");
        let events = parsed
            .get("traceEvents")
            .and_then(JsonValue::as_arr)
            .expect("traceEvents array");
        assert!(events.len() >= sample_events().len());
        // Both processes appear, machine slices carry args, and the worker
        // track shows a wait + busy pair.
        let pids: Vec<f64> = events
            .iter()
            .filter_map(|e| e.get("pid").and_then(JsonValue::as_f64))
            .collect();
        assert!(pids.contains(&(PID_MACHINES as f64)));
        assert!(pids.contains(&(PID_WORKERS as f64)));
        let waits = events
            .iter()
            .filter(|e| e.get("name").and_then(JsonValue::as_str) == Some("barrier-wait"))
            .count();
        assert_eq!(waits, 1);
        let retire = events
            .iter()
            .find(|e| {
                e.get("name")
                    .and_then(JsonValue::as_str)
                    .is_some_and(|n| n.starts_with("retire instance"))
            })
            .expect("retirement instant event");
        assert_eq!(retire.get("ph").unwrap().as_str().unwrap(), "i");
    }
}
