//! Deterministic, seeded fault injection for chaos testing.
//!
//! A [`FaultPlan`] is a list of scheduled [`Fault`]s attached to a
//! [`Cluster`](crate::Cluster) with
//! [`set_fault_plan`](crate::Cluster::set_fault_plan). Faults fire inside
//! [`exchange_into`](crate::Cluster::exchange_into) — the single choke
//! point every execution mode (serial and worker pool alike) funnels
//! through — so a plan produces the *identical* fault sequence regardless
//! of how the round loop is driven. With no plan attached the exchange hot
//! path pays exactly one branch per round (same contract as tracing).
//!
//! Faults come in four flavors:
//!
//! * [`Fault::Crash`] — the machine loses its local state, its RNG
//!   position, and every message of the crashing exchange (outbound *and*
//!   inbound). Recovery is the execution engine's job (DESIGN.md §2.7,
//!   §2.9): the driver restores a small machine's shard from a peer
//!   replica and the large machine's from its durable-host checkpoint,
//!   then replays the lost rounds — any machine may be a victim.
//! * [`Fault::DropExchange`] — transient network fault: the machine's
//!   outbound messages for one exchange are lost, but its state survives.
//! * [`Fault::DelayRound`] — one round's makespan is stretched by a fixed
//!   number of simulated seconds (a transient stall).
//! * [`Fault::Slowdown`] — the machine's speed and bandwidth drop
//!   permanently from the fault round onward (a degrading host).
//!
//! Crash and drop faults are **armed**: they only fire on exchanges the
//! driver has marked fault-eligible (see
//! [`arm_faults`](crate::Cluster::arm_faults)), deferring past setup and
//! recovery-infrastructure exchanges to the next armed round. Delay and
//! slowdown faults fire on schedule regardless of arming — they model the
//! environment, not the protocol.

use crate::payload::{MachineId, Payload};

/// One scheduled fault. Rounds are 1-based cluster exchange counts (the
/// value [`Cluster::rounds`](crate::Cluster::rounds) reports *after* the
/// exchange); a fault scheduled for a round that has already passed, or
/// for a disarmed exchange (crash/drop only), defers to the next eligible
/// exchange.
#[derive(Clone, Debug, PartialEq)]
pub enum Fault {
    /// Machine `machine` crashes during exchange `round`: local state, RNG
    /// position, and all of its messages that round are lost.
    Crash {
        /// The crashing machine.
        machine: MachineId,
        /// Earliest exchange round the crash can fire on.
        round: u64,
    },
    /// Machine `machine`'s outbound messages for exchange `round` are
    /// lost in transit; its state and inbound mail survive.
    DropExchange {
        /// The machine whose outbox is dropped.
        machine: MachineId,
        /// Earliest exchange round the drop can fire on.
        round: u64,
    },
    /// Exchange `round` stalls for `seconds` of extra simulated makespan.
    DelayRound {
        /// Earliest exchange round the delay can fire on.
        round: u64,
        /// Extra simulated seconds added to that round's makespan.
        seconds: f64,
    },
    /// Machine `machine` permanently slows to `factor` of its configured
    /// speed and bandwidth from exchange `round` onward.
    Slowdown {
        /// The degrading machine.
        machine: MachineId,
        /// Earliest exchange round the slowdown takes effect.
        round: u64,
        /// Multiplier in `(0, 1]` applied to speed and bandwidth.
        factor: f64,
    },
}

impl Fault {
    /// The earliest exchange round this fault can fire on.
    pub fn round(&self) -> u64 {
        match self {
            Fault::Crash { round, .. }
            | Fault::DropExchange { round, .. }
            | Fault::DelayRound { round, .. }
            | Fault::Slowdown { round, .. } => *round,
        }
    }

    /// Whether this fault only fires on armed (fault-eligible) exchanges.
    pub fn needs_arming(&self) -> bool {
        matches!(self, Fault::Crash { .. } | Fault::DropExchange { .. })
    }

    /// Short static name for telemetry (`kind` field of
    /// [`TraceEvent::FaultInjected`](crate::TraceEvent::FaultInjected)).
    pub fn kind(&self) -> &'static str {
        match self {
            Fault::Crash { .. } => "crash",
            Fault::DropExchange { .. } => "drop_exchange",
            Fault::DelayRound { .. } => "delay_round",
            Fault::Slowdown { .. } => "slowdown",
        }
    }

    /// Human-readable detail string for telemetry.
    pub fn detail(&self) -> String {
        match self {
            Fault::Crash { machine, round } => {
                format!("machine {machine} crashes (scheduled round {round})")
            }
            Fault::DropExchange { machine, round } => {
                format!("machine {machine} outbox dropped (scheduled round {round})")
            }
            Fault::DelayRound { round, seconds } => {
                format!("round stalled {seconds}s (scheduled round {round})")
            }
            Fault::Slowdown {
                machine,
                round,
                factor,
            } => {
                format!("machine {machine} slowed to {factor}x (scheduled round {round})")
            }
        }
    }
}

/// How the execution engine checkpoints and recovers (DESIGN.md §2.7).
#[derive(Clone, Debug, PartialEq)]
pub struct RecoveryPolicy {
    /// Number of peer replicas each small machine's shard state is copied
    /// to at every checkpoint (ring successors among the small machines).
    pub replicas: usize,
    /// Checkpoint every `cadence` driver rounds (1 = every round).
    pub cadence: u64,
    /// Recovery attempts per disrupted round before the driver surfaces
    /// `ExecError::Unrecoverable`.
    pub max_retries: usize,
    /// Simulated seconds of backoff added per retry attempt (linear).
    pub backoff_seconds: f64,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            replicas: 1,
            cadence: 1,
            max_retries: 3,
            backoff_seconds: 1.0,
        }
    }
}

/// A fault that actually fired, as reported by
/// [`Cluster::take_fired_faults`](crate::Cluster::take_fired_faults).
#[derive(Clone, Debug, PartialEq)]
pub struct FiredFault {
    /// The fault as scheduled.
    pub fault: Fault,
    /// The exchange round it actually fired on (≥ the scheduled round when
    /// deferred past disarmed exchanges).
    pub round: u64,
}

/// A deterministic schedule of faults plus the recovery policy the
/// execution engine should apply. Attach with
/// [`Cluster::set_fault_plan`](crate::Cluster::set_fault_plan).
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    faults: Vec<Fault>,
    fired: Vec<bool>,
    policy: RecoveryPolicy,
}

impl FaultPlan {
    /// An empty plan (no faults, default [`RecoveryPolicy`]).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Adds a scheduled fault (builder style).
    pub fn with_fault(mut self, fault: Fault) -> Self {
        self.faults.push(fault);
        self.fired.push(false);
        self
    }

    /// Replaces the recovery policy (builder style).
    pub fn with_policy(mut self, policy: RecoveryPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The canonical chaos-matrix plan: crash exactly one small machine
    /// (chosen by `seed`) halfway through a run expected to take
    /// `total_rounds` exchanges. Deterministic in `(seed, small_ids,
    /// total_rounds)`. The execution engine recovers the large machine too
    /// (its checkpoint lives on the durable host, DESIGN.md §2.9) — use
    /// [`seeded_single_crash_among`](FaultPlan::seeded_single_crash_among)
    /// to put it in the victim pool.
    ///
    /// # Panics
    ///
    /// Panics if `small_ids` is empty.
    pub fn seeded_single_crash(seed: u64, small_ids: &[MachineId], total_rounds: u64) -> Self {
        Self::seeded_single_crash_among(seed, small_ids, total_rounds)
    }

    /// [`seeded_single_crash`](FaultPlan::seeded_single_crash) over an
    /// arbitrary victim pool — pass every machine id (large included) to
    /// exercise coordinator failover in the chaos matrix.
    ///
    /// # Panics
    ///
    /// Panics if `victims` is empty.
    pub fn seeded_single_crash_among(seed: u64, victims: &[MachineId], total_rounds: u64) -> Self {
        assert!(
            !victims.is_empty(),
            "seeded_single_crash needs at least one victim machine"
        );
        let victim = victims[(seed % victims.len() as u64) as usize];
        let round = (total_rounds / 2).max(1);
        FaultPlan::new().with_fault(Fault::Crash {
            machine: victim,
            round,
        })
    }

    /// The scheduled faults, in insertion order.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// The plan's recovery policy.
    pub fn policy(&self) -> &RecoveryPolicy {
        &self.policy
    }

    /// Faults that would fire on exchange round `round` given the arming
    /// state, without marking them fired. Crash/drop faults additionally
    /// require `armed`; every fault defers past its scheduled round if
    /// earlier exchanges were ineligible.
    pub fn due(&self, round: u64, armed: bool) -> Vec<Fault> {
        self.faults
            .iter()
            .zip(&self.fired)
            .filter(|(f, &fired)| !fired && f.round() <= round && (armed || !f.needs_arming()))
            .map(|(f, _)| f.clone())
            .collect()
    }

    /// Like [`due`](FaultPlan::due), but marks the returned faults fired:
    /// each fault fires at most once per run.
    pub fn fire_due(&mut self, round: u64, armed: bool) -> Vec<FiredFault> {
        let mut out = Vec::new();
        for (f, fired) in self.faults.iter().zip(self.fired.iter_mut()) {
            if !*fired && f.round() <= round && (armed || !f.needs_arming()) {
                *fired = true;
                out.push(FiredFault {
                    fault: f.clone(),
                    round,
                });
            }
        }
        out
    }

    /// Whether any fault is still pending (unfired).
    pub fn pending(&self) -> bool {
        self.fired.iter().any(|&f| !f)
    }
}

/// Opaque replication payload: `words()` is the declared shard-state size
/// being copied, so checkpoint traffic is charged to the cost model and
/// the capacity checks exactly like algorithm traffic.
#[derive(Clone, Debug, PartialEq)]
pub struct ReplicaChunk(pub usize);

impl Payload for ReplicaChunk {
    fn words(&self) -> usize {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_single_crash_is_deterministic_and_picks_small_machines() {
        let smalls = [1, 2, 3, 4];
        let a = FaultPlan::seeded_single_crash(7, &smalls, 40);
        let b = FaultPlan::seeded_single_crash(7, &smalls, 40);
        assert_eq!(a.faults(), b.faults());
        match a.faults()[0] {
            Fault::Crash { machine, round } => {
                assert_eq!(machine, smalls[(7 % 4) as usize]);
                assert_eq!(round, 20);
            }
            ref other => panic!("expected a crash, got {other:?}"),
        }
        // Different seeds cycle through victims.
        let victims: Vec<MachineId> = (0..4)
            .map(
                |s| match FaultPlan::seeded_single_crash(s, &smalls, 40).faults()[0] {
                    Fault::Crash { machine, .. } => machine,
                    _ => unreachable!(),
                },
            )
            .collect();
        assert_eq!(victims, smalls);
    }

    #[test]
    fn crash_round_floors_at_one() {
        let plan = FaultPlan::seeded_single_crash(0, &[1], 1);
        assert_eq!(plan.faults()[0].round(), 1);
    }

    #[test]
    fn crash_defers_until_armed_and_fires_once() {
        let mut plan = FaultPlan::new().with_fault(Fault::Crash {
            machine: 2,
            round: 3,
        });
        assert!(plan.fire_due(2, true).is_empty(), "not yet due");
        assert!(plan.fire_due(3, false).is_empty(), "due but disarmed");
        assert!(plan.pending());
        let fired = plan.fire_due(5, true);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].round, 5, "fires on the deferred round");
        assert_eq!(fired[0].fault.round(), 3, "schedule preserved");
        assert!(plan.fire_due(6, true).is_empty(), "at most once");
        assert!(!plan.pending());
    }

    #[test]
    fn delay_and_slowdown_ignore_arming() {
        let mut plan = FaultPlan::new()
            .with_fault(Fault::DelayRound {
                round: 1,
                seconds: 2.5,
            })
            .with_fault(Fault::Slowdown {
                machine: 1,
                round: 1,
                factor: 0.5,
            });
        let fired = plan.fire_due(1, false);
        assert_eq!(fired.len(), 2);
    }

    #[test]
    fn due_peeks_without_firing() {
        let plan = FaultPlan::new().with_fault(Fault::DropExchange {
            machine: 1,
            round: 1,
        });
        assert_eq!(plan.due(1, true).len(), 1);
        assert_eq!(plan.due(1, true).len(), 1, "due does not consume");
        assert!(plan.due(1, false).is_empty(), "drop respects arming");
    }

    #[test]
    fn replica_chunk_words_are_the_declared_size() {
        assert_eq!(ReplicaChunk(17).words(), 17);
    }
}
