//! Heterogeneous cost model: what a round *costs* in simulated time.
//!
//! The paper's model counts rounds; real heterogeneous clusters (in the
//! spirit of *Parallel Query Processing with Heterogeneous Machines* and
//! *Coded Computation over Heterogeneous Clusters*) pay wall-clock per
//! round proportional to the **slowest** machine: each machine `i` spends
//! `work_i / speed_i` seconds computing and `(sent_i + recv_i) /
//! bandwidth_i` seconds on the wire, and the synchronous barrier waits for
//! the maximum. The [`CostModel`] turns the per-round accounting the
//! [`Cluster`](crate::Cluster) already does into a simulated per-round
//! *makespan* and a total *critical-path time*, which is what the bench
//! tables report for straggler / non-uniform scenarios.
//!
//! Units are arbitrary but consistent: speeds and bandwidths are
//! words-per-second, latency is seconds. The defaults (speed 1, bandwidth
//! 1, latency 0) make makespans directly comparable to word counts.

use crate::payload::MachineId;

/// Per-machine speeds, link bandwidths, and a per-round latency.
#[derive(Clone, Debug, PartialEq)]
pub struct CostModel {
    speeds: Vec<f64>,
    bandwidths: Vec<f64>,
    round_latency: f64,
}

impl CostModel {
    /// A uniform model: every machine computes `speed` words/sec and moves
    /// `bandwidth` words/sec; every round costs `round_latency` seconds of
    /// synchronization overhead.
    pub fn uniform(machines: usize, speed: f64, bandwidth: f64, round_latency: f64) -> Self {
        assert!(machines > 0, "cost model needs at least one machine");
        assert!(speed > 0.0 && bandwidth > 0.0, "speeds must be positive");
        assert!(round_latency >= 0.0, "latency cannot be negative");
        CostModel {
            speeds: vec![speed; machines],
            bandwidths: vec![bandwidth; machines],
            round_latency,
        }
    }

    /// Explicit per-machine speeds and bandwidths.
    ///
    /// # Panics
    ///
    /// Panics if the vectors disagree in length, are empty, or contain
    /// non-positive rates.
    pub fn new(speeds: Vec<f64>, bandwidths: Vec<f64>, round_latency: f64) -> Self {
        assert_eq!(
            speeds.len(),
            bandwidths.len(),
            "speeds/bandwidths length mismatch"
        );
        assert!(!speeds.is_empty(), "cost model needs at least one machine");
        assert!(
            speeds.iter().chain(&bandwidths).all(|&r| r > 0.0),
            "rates must be positive"
        );
        assert!(round_latency >= 0.0, "latency cannot be negative");
        CostModel {
            speeds,
            bandwidths,
            round_latency,
        }
    }

    /// A model where each machine's speed and bandwidth scale with its
    /// memory capacity relative to the smallest machine — the "big machine
    /// is also the fast machine" reading of the heterogeneous regime.
    pub fn proportional_to_capacity(caps: &[usize], round_latency: f64) -> Self {
        assert!(!caps.is_empty(), "cost model needs at least one machine");
        let base = caps.iter().copied().min().unwrap_or(1).max(1) as f64;
        let rel: Vec<f64> = caps.iter().map(|&c| (c.max(1) as f64) / base).collect();
        CostModel {
            speeds: rel.clone(),
            bandwidths: rel,
            round_latency,
        }
    }

    /// Returns the model with machine `mid` slowed by `factor` (both
    /// compute and bandwidth): `factor = 0.25` makes it a 4× straggler.
    ///
    /// # Panics
    ///
    /// Panics if `mid` is out of range or `factor` is not positive.
    pub fn with_straggler(mut self, mid: MachineId, factor: f64) -> Self {
        assert!(mid < self.speeds.len(), "straggler id out of range");
        assert!(factor > 0.0, "straggler factor must be positive");
        self.speeds[mid] *= factor;
        self.bandwidths[mid] *= factor;
        self
    }

    /// Number of machines the model covers.
    pub fn machines(&self) -> usize {
        self.speeds.len()
    }

    /// Compute speed of machine `mid` (words/sec).
    pub fn speed(&self, mid: MachineId) -> f64 {
        self.speeds[mid]
    }

    /// Link bandwidth of machine `mid` (words/sec).
    pub fn bandwidth(&self, mid: MachineId) -> f64 {
        self.bandwidths[mid]
    }

    /// Fixed synchronization cost of every round (seconds).
    pub fn round_latency(&self) -> f64 {
        self.round_latency
    }

    /// Seconds machine `mid` itself spends in a round moving
    /// `sent + recv` words and computing `work` words — the per-machine
    /// term of [`round_makespan`](CostModel::round_makespan), *before*
    /// latency and the barrier. This is the quantity telemetry attributes
    /// per machine: the gap between a machine's own seconds and the
    /// round's makespan is its barrier wait.
    pub fn machine_round_seconds(
        &self,
        mid: MachineId,
        sent: usize,
        recv: usize,
        work: u64,
    ) -> f64 {
        (sent + recv) as f64 / self.bandwidths[mid] + work as f64 / self.speeds[mid]
    }

    /// Simulated duration of one synchronous round: the barrier waits for
    /// the slowest machine, so the round costs
    /// `latency + max_i(work_i/speed_i + (sent_i+recv_i)/bandwidth_i)`.
    pub fn round_makespan(&self, sent: &[usize], recv: &[usize], work: &[u64]) -> f64 {
        debug_assert_eq!(sent.len(), self.speeds.len());
        let worst = (0..self.speeds.len())
            .map(|i| self.machine_round_seconds(i, sent[i], recv[i], work[i]))
            .fold(0.0_f64, f64::max);
        self.round_latency + worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_round_is_bottleneck_word_count() {
        let m = CostModel::uniform(3, 1.0, 1.0, 0.0);
        let span = m.round_makespan(&[10, 0, 2], &[0, 10, 2], &[0, 0, 0]);
        assert_eq!(span, 10.0);
    }

    #[test]
    fn straggler_dominates_makespan() {
        let m = CostModel::uniform(3, 1.0, 1.0, 0.5).with_straggler(2, 0.25);
        // Machine 2 moves 4 words at bandwidth 0.25 => 16s, plus latency.
        let span = m.round_makespan(&[0, 0, 4], &[0, 0, 0], &[0, 0, 0]);
        assert!((span - 16.5).abs() < 1e-9, "span = {span}");
    }

    #[test]
    fn work_charges_against_compute_speed() {
        let m = CostModel::new(vec![2.0, 1.0], vec![1.0, 1.0], 0.0);
        // Same work, half the speed on machine 1.
        let span = m.round_makespan(&[0, 0], &[0, 0], &[8, 8]);
        assert_eq!(span, 8.0);
    }

    #[test]
    fn proportional_scales_with_capacity() {
        let m = CostModel::proportional_to_capacity(&[400, 100, 100], 0.0);
        assert_eq!(m.speed(0), 4.0);
        assert_eq!(m.speed(1), 1.0);
        assert_eq!(m.machines(), 3);
    }

    #[test]
    #[should_panic]
    fn zero_rate_rejected() {
        CostModel::new(vec![0.0], vec![1.0], 0.0);
    }
}
