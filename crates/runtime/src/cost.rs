//! Heterogeneous cost model: what a round *costs* in simulated time.
//!
//! The paper's model counts rounds; real heterogeneous clusters (in the
//! spirit of *Parallel Query Processing with Heterogeneous Machines* and
//! *Coded Computation over Heterogeneous Clusters*) pay wall-clock per
//! round proportional to the **slowest** machine: each machine `i` spends
//! `work_i / speed_i` seconds computing and `(sent_i + recv_i) /
//! bandwidth_i` seconds on the wire, and the synchronous barrier waits for
//! the maximum. The [`CostModel`] turns the per-round accounting the
//! [`Cluster`](crate::Cluster) already does into a simulated per-round
//! *makespan* and a total *critical-path time*, which is what the bench
//! tables report for straggler / non-uniform scenarios.
//!
//! Units are arbitrary but consistent: speeds and bandwidths are
//! words-per-second, latency is seconds. The defaults (speed 1, bandwidth
//! 1, latency 0) make makespans directly comparable to word counts.

use crate::payload::MachineId;

/// Per-machine speeds, link bandwidths, and a per-round latency.
#[derive(Clone, Debug, PartialEq)]
pub struct CostModel {
    speeds: Vec<f64>,
    bandwidths: Vec<f64>,
    round_latency: f64,
    /// Machines currently quarantined (crashed and not yet recovered): a
    /// dead machine spends no seconds, so it drops out of the barrier max
    /// instead of still counting toward the critical path. Empty until a
    /// fault quarantines someone, so fault-free models compare equal.
    quarantined: Vec<bool>,
}

impl CostModel {
    /// A uniform model: every machine computes `speed` words/sec and moves
    /// `bandwidth` words/sec; every round costs `round_latency` seconds of
    /// synchronization overhead.
    pub fn uniform(machines: usize, speed: f64, bandwidth: f64, round_latency: f64) -> Self {
        assert!(machines > 0, "cost model needs at least one machine");
        assert!(speed > 0.0 && bandwidth > 0.0, "speeds must be positive");
        assert!(round_latency >= 0.0, "latency cannot be negative");
        CostModel {
            speeds: vec![speed; machines],
            bandwidths: vec![bandwidth; machines],
            round_latency,
            quarantined: Vec::new(),
        }
    }

    /// Explicit per-machine speeds and bandwidths.
    ///
    /// # Panics
    ///
    /// Panics if the vectors disagree in length, are empty, or contain
    /// non-positive rates.
    pub fn new(speeds: Vec<f64>, bandwidths: Vec<f64>, round_latency: f64) -> Self {
        assert_eq!(
            speeds.len(),
            bandwidths.len(),
            "speeds/bandwidths length mismatch"
        );
        assert!(!speeds.is_empty(), "cost model needs at least one machine");
        assert!(
            speeds.iter().chain(&bandwidths).all(|&r| r > 0.0),
            "rates must be positive"
        );
        assert!(round_latency >= 0.0, "latency cannot be negative");
        CostModel {
            speeds,
            bandwidths,
            round_latency,
            quarantined: Vec::new(),
        }
    }

    /// A model where each machine's speed and bandwidth scale with its
    /// memory capacity relative to the smallest machine — the "big machine
    /// is also the fast machine" reading of the heterogeneous regime.
    pub fn proportional_to_capacity(caps: &[usize], round_latency: f64) -> Self {
        assert!(!caps.is_empty(), "cost model needs at least one machine");
        let base = caps.iter().copied().min().unwrap_or(1).max(1) as f64;
        let rel: Vec<f64> = caps.iter().map(|&c| (c.max(1) as f64) / base).collect();
        CostModel {
            speeds: rel.clone(),
            bandwidths: rel,
            round_latency,
            quarantined: Vec::new(),
        }
    }

    /// Returns the model with machine `mid` slowed by `factor` (both
    /// compute and bandwidth): `factor = 0.25` makes it a 4× straggler.
    ///
    /// # Panics
    ///
    /// Panics if `mid` is out of range or `factor` is not positive.
    pub fn with_straggler(mut self, mid: MachineId, factor: f64) -> Self {
        assert!(mid < self.speeds.len(), "straggler id out of range");
        assert!(factor > 0.0, "straggler factor must be positive");
        self.speeds[mid] *= factor;
        self.bandwidths[mid] *= factor;
        self
    }

    /// Permanently slows machine `mid` to `factor` of its current speed
    /// and bandwidth — the in-place form of
    /// [`with_straggler`](CostModel::with_straggler), used by
    /// [`Fault::Slowdown`](crate::fault::Fault::Slowdown) mid-run.
    ///
    /// # Panics
    ///
    /// Panics if `mid` is out of range or `factor` is not positive.
    pub fn slow_down(&mut self, mid: MachineId, factor: f64) {
        assert!(mid < self.speeds.len(), "slow_down id out of range");
        assert!(factor > 0.0, "slowdown factor must be positive");
        self.speeds[mid] *= factor;
        self.bandwidths[mid] *= factor;
    }

    /// Marks machine `mid` quarantined (crashed, awaiting recovery): its
    /// per-round seconds become zero, so a dead straggler no longer
    /// dominates [`round_makespan`](CostModel::round_makespan).
    pub fn quarantine(&mut self, mid: MachineId) {
        assert!(mid < self.speeds.len(), "quarantine id out of range");
        if self.quarantined.is_empty() {
            self.quarantined = vec![false; self.speeds.len()];
        }
        self.quarantined[mid] = true;
    }

    /// Lifts a quarantine (the machine's shard was restored).
    pub fn restore(&mut self, mid: MachineId) {
        if let Some(q) = self.quarantined.get_mut(mid) {
            *q = false;
        }
    }

    /// Whether machine `mid` is currently quarantined.
    pub fn is_quarantined(&self, mid: MachineId) -> bool {
        self.quarantined.get(mid).copied().unwrap_or(false)
    }

    /// Number of machines the model covers.
    pub fn machines(&self) -> usize {
        self.speeds.len()
    }

    /// Compute speed of machine `mid` (words/sec).
    pub fn speed(&self, mid: MachineId) -> f64 {
        self.speeds[mid]
    }

    /// Link bandwidth of machine `mid` (words/sec).
    pub fn bandwidth(&self, mid: MachineId) -> f64 {
        self.bandwidths[mid]
    }

    /// Fixed synchronization cost of every round (seconds).
    pub fn round_latency(&self) -> f64 {
        self.round_latency
    }

    /// Seconds machine `mid` itself spends in a round moving
    /// `sent + recv` words and computing `work` words — the per-machine
    /// term of [`round_makespan`](CostModel::round_makespan), *before*
    /// latency and the barrier. This is the quantity telemetry attributes
    /// per machine: the gap between a machine's own seconds and the
    /// round's makespan is its barrier wait.
    pub fn machine_round_seconds(
        &self,
        mid: MachineId,
        sent: usize,
        recv: usize,
        work: u64,
    ) -> f64 {
        if self.is_quarantined(mid) {
            // A crashed machine does no work and waits at no barrier; its
            // straggler profile must not stretch the round it is dead for.
            return 0.0;
        }
        (sent + recv) as f64 / self.bandwidths[mid] + work as f64 / self.speeds[mid]
    }

    /// Simulated duration of one synchronous round: the barrier waits for
    /// the slowest machine, so the round costs
    /// `latency + max_i(work_i/speed_i + (sent_i+recv_i)/bandwidth_i)`.
    pub fn round_makespan(&self, sent: &[usize], recv: &[usize], work: &[u64]) -> f64 {
        debug_assert_eq!(sent.len(), self.speeds.len());
        let worst = (0..self.speeds.len())
            .map(|i| self.machine_round_seconds(i, sent[i], recv[i], work[i]))
            .fold(0.0_f64, f64::max);
        self.round_latency + worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_round_is_bottleneck_word_count() {
        let m = CostModel::uniform(3, 1.0, 1.0, 0.0);
        let span = m.round_makespan(&[10, 0, 2], &[0, 10, 2], &[0, 0, 0]);
        assert_eq!(span, 10.0);
    }

    #[test]
    fn straggler_dominates_makespan() {
        let m = CostModel::uniform(3, 1.0, 1.0, 0.5).with_straggler(2, 0.25);
        // Machine 2 moves 4 words at bandwidth 0.25 => 16s, plus latency.
        let span = m.round_makespan(&[0, 0, 4], &[0, 0, 0], &[0, 0, 0]);
        assert!((span - 16.5).abs() < 1e-9, "span = {span}");
    }

    #[test]
    fn work_charges_against_compute_speed() {
        let m = CostModel::new(vec![2.0, 1.0], vec![1.0, 1.0], 0.0);
        // Same work, half the speed on machine 1.
        let span = m.round_makespan(&[0, 0], &[0, 0], &[8, 8]);
        assert_eq!(span, 8.0);
    }

    #[test]
    fn proportional_scales_with_capacity() {
        let m = CostModel::proportional_to_capacity(&[400, 100, 100], 0.0);
        assert_eq!(m.speed(0), 4.0);
        assert_eq!(m.speed(1), 1.0);
        assert_eq!(m.machines(), 3);
    }

    #[test]
    #[should_panic]
    fn zero_rate_rejected() {
        CostModel::new(vec![0.0], vec![1.0], 0.0);
    }

    #[test]
    fn quarantined_straggler_drops_out_of_makespan() {
        let mut m = CostModel::uniform(3, 1.0, 1.0, 0.0).with_straggler(2, 0.1);
        // Alive, the straggler dominates: 4 words at bandwidth 0.1 => 40s.
        let span = m.round_makespan(&[0, 0, 4], &[4, 0, 0], &[0, 0, 0]);
        assert!((span - 40.0).abs() < 1e-9, "span = {span}");
        // Quarantined, its seconds vanish and the healthy machines set the
        // barrier (machine 0 recv 4 words at bandwidth 1 => 4s).
        m.quarantine(2);
        assert!(m.is_quarantined(2));
        assert_eq!(m.machine_round_seconds(2, 4, 0, 100), 0.0);
        let span = m.round_makespan(&[0, 0, 4], &[4, 0, 0], &[0, 0, 0]);
        assert!((span - 4.0).abs() < 1e-9, "span = {span}");
        // Restored, the straggler profile composes again.
        m.restore(2);
        assert!(!m.is_quarantined(2));
        let span = m.round_makespan(&[0, 0, 4], &[4, 0, 0], &[0, 0, 0]);
        assert!((span - 40.0).abs() < 1e-9, "span = {span}");
    }

    #[test]
    fn slow_down_composes_with_straggler_profile() {
        let mut m = CostModel::uniform(2, 1.0, 1.0, 0.0).with_straggler(1, 0.5);
        m.slow_down(1, 0.5);
        assert!((m.speed(1) - 0.25).abs() < 1e-12);
        assert!((m.bandwidth(1) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn fresh_models_compare_equal_regardless_of_quarantine_history() {
        let a = CostModel::uniform(2, 1.0, 1.0, 0.0);
        let mut b = CostModel::uniform(2, 1.0, 1.0, 0.0);
        assert_eq!(a, b);
        b.quarantine(1);
        assert_ne!(a, b);
    }
}
