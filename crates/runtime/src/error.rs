//! Model-violation errors raised by the capacity-enforcing simulator.

use crate::payload::MachineId;
use std::error::Error;
use std::fmt;

/// A violation of the MPC model's resource bounds (paper §2).
///
/// Raised in [`Enforcement::Strict`](crate::Enforcement::Strict) mode when a
/// machine sends, receives, or stores more words than its capacity in a
/// single round. In `Record` mode violations are logged on the
/// [`Cluster`](crate::Cluster) instead of returned.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ModelViolation {
    /// A machine attempted to send more words in one round than it can store.
    SendOverflow {
        /// Offending machine.
        machine: MachineId,
        /// Round index at which the overflow occurred.
        round: u64,
        /// Human-readable label of the offending exchange.
        label: String,
        /// Words the machine attempted to send.
        words: usize,
        /// The machine's capacity in words.
        capacity: usize,
    },
    /// A machine was addressed with more words in one round than it can store.
    RecvOverflow {
        /// Offending machine.
        machine: MachineId,
        /// Round index at which the overflow occurred.
        round: u64,
        /// Human-readable label of the offending exchange.
        label: String,
        /// Words addressed to the machine.
        words: usize,
        /// The machine's capacity in words.
        capacity: usize,
    },
    /// A machine's declared resident memory exceeded its capacity.
    MemoryOverflow {
        /// Offending machine.
        machine: MachineId,
        /// Round index at which the overflow was declared.
        round: u64,
        /// Accounting slot that tipped the machine over its capacity.
        slot: String,
        /// Total resident words after the update.
        words: usize,
        /// The machine's capacity in words.
        capacity: usize,
    },
    /// A message was addressed to a machine id outside the cluster.
    UnknownMachine {
        /// The invalid destination id.
        machine: MachineId,
        /// Human-readable label of the offending exchange.
        label: String,
    },
}

impl fmt::Display for ModelViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelViolation::SendOverflow { machine, round, label, words, capacity } => write!(
                f,
                "machine {machine} sent {words} words in round {round} ({label}), capacity {capacity}"
            ),
            ModelViolation::RecvOverflow { machine, round, label, words, capacity } => write!(
                f,
                "machine {machine} received {words} words in round {round} ({label}), capacity {capacity}"
            ),
            ModelViolation::MemoryOverflow { machine, round, slot, words, capacity } => write!(
                f,
                "machine {machine} resident memory reached {words} words after slot '{slot}' in round {round}, capacity {capacity}"
            ),
            ModelViolation::UnknownMachine { machine, label } => {
                write!(f, "message addressed to unknown machine {machine} ({label})")
            }
        }
    }
}

impl Error for ModelViolation {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let v = ModelViolation::SendOverflow {
            machine: 3,
            round: 7,
            label: "sort.route".into(),
            words: 100,
            capacity: 50,
        };
        let s = v.to_string();
        assert!(s.contains("machine 3"));
        assert!(s.contains("sort.route"));
        assert!(s.contains("100"));
    }
}
