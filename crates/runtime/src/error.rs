//! Model-violation errors raised by the capacity-enforcing simulator.

use crate::payload::MachineId;
use std::error::Error;
use std::fmt;

/// A violation of the MPC model's resource bounds (paper §2).
///
/// Raised in [`Enforcement::Strict`](crate::Enforcement::Strict) mode when a
/// machine sends, receives, or stores more words than its capacity in a
/// single round. In `Record` mode violations are logged on the
/// [`Cluster`](crate::Cluster) instead of returned.
///
/// Every variant carries the round index and the label of the exchange it
/// is attributed to, so a `Record`-mode violation log identifies *which*
/// exchange exceeded capacity, not just by how much (memory violations
/// declared between rounds carry the most recent exchange's label).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ModelViolation {
    /// A machine attempted to send more words in one round than it can store.
    SendOverflow {
        /// Offending machine.
        machine: MachineId,
        /// Round index at which the overflow occurred.
        round: u64,
        /// Human-readable label of the offending exchange.
        label: String,
        /// Words the machine attempted to send.
        words: usize,
        /// The machine's capacity in words.
        capacity: usize,
    },
    /// A machine was addressed with more words in one round than it can store.
    RecvOverflow {
        /// Offending machine.
        machine: MachineId,
        /// Round index at which the overflow occurred.
        round: u64,
        /// Human-readable label of the offending exchange.
        label: String,
        /// Words addressed to the machine.
        words: usize,
        /// The machine's capacity in words.
        capacity: usize,
    },
    /// A machine's declared resident memory exceeded its capacity.
    MemoryOverflow {
        /// Offending machine.
        machine: MachineId,
        /// Round index at which the overflow was declared.
        round: u64,
        /// Label of the most recent exchange when the overflow was
        /// declared (memory is accounted between rounds).
        label: String,
        /// Accounting slot that tipped the machine over its capacity.
        slot: String,
        /// Total resident words after the update.
        words: usize,
        /// The machine's capacity in words.
        capacity: usize,
    },
    /// A message was addressed to a machine id outside the cluster.
    UnknownMachine {
        /// The invalid destination id.
        machine: MachineId,
        /// Round index of the offending exchange.
        round: u64,
        /// Human-readable label of the offending exchange.
        label: String,
    },
}

impl ModelViolation {
    /// The round index the violation is attributed to.
    pub fn round(&self) -> u64 {
        match self {
            ModelViolation::SendOverflow { round, .. }
            | ModelViolation::RecvOverflow { round, .. }
            | ModelViolation::MemoryOverflow { round, .. }
            | ModelViolation::UnknownMachine { round, .. } => *round,
        }
    }

    /// The label of the exchange the violation is attributed to.
    pub fn label(&self) -> &str {
        match self {
            ModelViolation::SendOverflow { label, .. }
            | ModelViolation::RecvOverflow { label, .. }
            | ModelViolation::MemoryOverflow { label, .. }
            | ModelViolation::UnknownMachine { label, .. } => label,
        }
    }

    /// The offending machine.
    pub fn machine(&self) -> MachineId {
        match self {
            ModelViolation::SendOverflow { machine, .. }
            | ModelViolation::RecvOverflow { machine, .. }
            | ModelViolation::MemoryOverflow { machine, .. }
            | ModelViolation::UnknownMachine { machine, .. } => *machine,
        }
    }

    /// A stable snake_case tag for the violation kind (the telemetry
    /// stream's `kind` field).
    pub fn kind(&self) -> &'static str {
        match self {
            ModelViolation::SendOverflow { .. } => "send_overflow",
            ModelViolation::RecvOverflow { .. } => "recv_overflow",
            ModelViolation::MemoryOverflow { .. } => "memory_overflow",
            ModelViolation::UnknownMachine { .. } => "unknown_machine",
        }
    }
}

impl fmt::Display for ModelViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelViolation::SendOverflow { machine, round, label, words, capacity } => write!(
                f,
                "machine {machine} sent {words} words in round {round} ({label}), capacity {capacity}"
            ),
            ModelViolation::RecvOverflow { machine, round, label, words, capacity } => write!(
                f,
                "machine {machine} received {words} words in round {round} ({label}), capacity {capacity}"
            ),
            ModelViolation::MemoryOverflow { machine, round, label, slot, words, capacity } => write!(
                f,
                "machine {machine} resident memory reached {words} words after slot '{slot}' in round {round} (after {label}), capacity {capacity}"
            ),
            ModelViolation::UnknownMachine { machine, round, label } => {
                write!(f, "message addressed to unknown machine {machine} in round {round} ({label})")
            }
        }
    }
}

impl Error for ModelViolation {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let v = ModelViolation::SendOverflow {
            machine: 3,
            round: 7,
            label: "sort.route".into(),
            words: 100,
            capacity: 50,
        };
        let s = v.to_string();
        assert!(s.contains("machine 3"));
        assert!(s.contains("sort.route"));
        assert!(s.contains("100"));
    }

    #[test]
    fn accessors_attribute_every_variant() {
        let v = ModelViolation::MemoryOverflow {
            machine: 2,
            round: 4,
            label: "mst.collect.r003".into(),
            slot: "edges".into(),
            words: 99,
            capacity: 64,
        };
        assert_eq!(v.round(), 4);
        assert_eq!(v.label(), "mst.collect.r003");
        assert_eq!(v.machine(), 2);
        assert_eq!(v.kind(), "memory_overflow");

        let u = ModelViolation::UnknownMachine {
            machine: 9,
            round: 1,
            label: "bad".into(),
        };
        assert_eq!(u.round(), 1);
        assert_eq!(u.kind(), "unknown_machine");
        assert!(u.to_string().contains("round 1"));
    }
}
