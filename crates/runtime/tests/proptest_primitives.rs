//! Property tests for the communication primitives: whatever the data
//! distribution, results must equal their sequential references and respect
//! capacities in strict mode.

use mpc_runtime::primitives::{aggregate_by_key, disseminate, sample_sort, sum_to, top_t_per_key};
use mpc_runtime::{Cluster, ClusterConfig, ShardedVec, Topology};
use proptest::prelude::*;
use std::collections::BTreeMap;

fn cluster(machines: usize, cap: usize) -> Cluster {
    let mut caps = vec![cap; machines];
    caps[0] = cap * 50;
    Cluster::new(ClusterConfig::new(256, 1024).topology(Topology::Custom {
        capacities: caps,
        large: Some(0),
    }))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sort_output_is_sorted_and_complete(
        items in proptest::collection::vec(0u64..1_000_000, 1..600),
        machines in 3usize..20,
    ) {
        let mut c = cluster(machines, 4000);
        let parts = c.small_ids();
        let sv = ShardedVec::scatter(&c, items.clone(), &parts);
        let sorted = sample_sort(&mut c, "p", sv, &parts, |&x| x).unwrap();
        let mut flat: Vec<u64> = Vec::new();
        for &m in &parts {
            flat.extend(sorted.shard(m));
        }
        let mut want = items;
        want.sort_unstable();
        prop_assert_eq!(flat, want);
    }

    #[test]
    fn aggregation_matches_sequential_fold(
        pairs in proptest::collection::vec((0u32..60, 1u64..100), 1..400),
        machines in 3usize..16,
    ) {
        let mut c = cluster(machines, 6000);
        let owners = c.small_ids();
        let sv = ShardedVec::scatter(&c, pairs.clone(), &owners);
        let agg = aggregate_by_key(&mut c, "p", &sv, &owners, |a, b| a + b).unwrap();
        let mut got: BTreeMap<u32, u64> = BTreeMap::new();
        for (_m, (k, v)) in agg.iter() {
            prop_assert!(got.insert(*k, *v).is_none(), "duplicate key at owners");
        }
        let mut want: BTreeMap<u32, u64> = BTreeMap::new();
        for (k, v) in pairs {
            *want.entry(k).or_default() += v;
        }
        prop_assert_eq!(got, want);
    }

    #[test]
    fn top_t_returns_the_global_minima(
        pairs in proptest::collection::vec((0u32..20, 0u64..10_000), 1..300),
        t in 1usize..6,
        machines in 3usize..12,
    ) {
        let mut c = cluster(machines, 8000);
        let owners = c.small_ids();
        let sv = ShardedVec::scatter(&c, pairs.clone(), &owners);
        let got = top_t_per_key(&mut c, "p", &sv, &owners, 0, |_| t, |v| *v).unwrap();
        let mut want: BTreeMap<u32, Vec<u64>> = BTreeMap::new();
        for (k, v) in pairs {
            want.entry(k).or_default().push(v);
        }
        for (k, vs) in &mut want {
            vs.sort_unstable();
            vs.truncate(t);
            let found = got.iter().find(|(gk, _)| gk == k);
            prop_assert!(found.is_some(), "missing key {}", k);
            prop_assert_eq!(&found.unwrap().1, vs, "key {}", k);
        }
    }

    #[test]
    fn dissemination_answers_exactly_the_requests(
        keys in proptest::collection::btree_set(0u32..80, 1..60),
        requests_per_machine in proptest::collection::vec(
            proptest::collection::vec(0u32..100, 0..20), 2..10),
    ) {
        let machines = requests_per_machine.len() + 1;
        let mut c = cluster(machines, 4000);
        let owners = c.small_ids();
        let pairs: Vec<(u32, u64)> = keys.iter().map(|&k| (k, k as u64 * 31)).collect();
        let mut req: ShardedVec<u32> = ShardedVec::new(&c);
        for (i, rs) in requests_per_machine.iter().enumerate() {
            req.shard_mut(owners[i % owners.len()]).extend(rs.iter().copied());
        }
        let got = disseminate(&mut c, "p", &pairs, 0, &req, &owners).unwrap();
        for mid in 0..machines {
            let mut asked: Vec<u32> = req.shard(mid).to_vec();
            asked.sort_unstable();
            asked.dedup();
            let expected: Vec<(u32, u64)> = asked
                .into_iter()
                .filter(|k| keys.contains(k))
                .map(|k| (k, k as u64 * 31))
                .collect();
            prop_assert_eq!(got.shard(mid), &expected[..], "machine {}", mid);
        }
    }

    #[test]
    fn sum_reduction_is_exact(
        values in proptest::collection::vec(0u64..1_000_000, 2..40),
    ) {
        let mut c = cluster(values.len(), 3000);
        let parts: Vec<usize> = (0..values.len()).collect();
        let got = sum_to(&mut c, "p", &parts, values.clone(), 0).unwrap();
        prop_assert_eq!(got, values.iter().sum::<u64>());
    }
}
