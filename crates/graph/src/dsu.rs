//! Disjoint-set union (union–find) with path halving and union by size.
//!
//! Used by every Kruskal/Borůvka-style reference algorithm and by the large
//! machine's local contraction steps in `mpc-core`.

/// A classic disjoint-set forest over `0..n`.
#[derive(Clone, Debug)]
pub struct DisjointSets {
    parent: Vec<u32>,
    size: Vec<u32>,
    components: usize,
}

impl DisjointSets {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        DisjointSets {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
            components: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Representative of `x`'s set (path-halving).
    pub fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            self.parent[x as usize] = self.parent[self.parent[x as usize] as usize];
            x = self.parent[x as usize];
        }
        x
    }

    /// Merges the sets of `a` and `b`; returns `true` if they were distinct.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (big, small) = if self.size[ra as usize] >= self.size[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small as usize] = big;
        self.size[big as usize] += self.size[small as usize];
        self.components -= 1;
        true
    }

    /// Whether `a` and `b` are in the same set.
    pub fn same(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }

    /// Number of disjoint sets.
    pub fn component_count(&self) -> usize {
        self.components
    }

    /// Size of the set containing `x`.
    pub fn size_of(&mut self, x: u32) -> usize {
        let r = self.find(x);
        self.size[r as usize] as usize
    }

    /// Canonical labeling: for each element, the representative of its set.
    pub fn labels(&mut self) -> Vec<u32> {
        (0..self.parent.len() as u32)
            .map(|x| self.find(x))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_find_basics() {
        let mut d = DisjointSets::new(5);
        assert_eq!(d.component_count(), 5);
        assert!(d.union(0, 1));
        assert!(d.union(1, 2));
        assert!(!d.union(0, 2));
        assert_eq!(d.component_count(), 3);
        assert!(d.same(0, 2));
        assert!(!d.same(0, 3));
        assert_eq!(d.size_of(1), 3);
    }

    #[test]
    fn labels_are_canonical() {
        let mut d = DisjointSets::new(4);
        d.union(2, 3);
        let l = d.labels();
        assert_eq!(l[2], l[3]);
        assert_ne!(l[0], l[2]);
        assert_eq!(l[0], 0);
        assert_eq!(l[1], 1);
    }

    #[test]
    fn empty_is_empty() {
        let d = DisjointSets::new(0);
        assert!(d.is_empty());
        assert_eq!(d.len(), 0);
    }
}
