//! Global minimum cut: Stoer–Wagner reference implementation and helpers.
//!
//! The ported min-cut algorithms (Appendix C.2, C.3) contract the input down
//! to a small multigraph on the large machine and finish with a local
//! min-cut computation; this module provides that local computation plus the
//! validation oracle used in tests.

use crate::graph::Graph;
use crate::ids::{VertexId, Weight};

/// Weight of the cut `(S, V∖S)` where `side[v]` marks membership in `S`.
///
/// # Panics
///
/// Panics if `side.len() != g.n()` or the cut is trivial (all/none).
pub fn cut_value(g: &Graph, side: &[bool]) -> u128 {
    assert_eq!(side.len(), g.n());
    let s = side.iter().filter(|&&b| b).count();
    assert!(s > 0 && s < g.n(), "cut must be non-trivial");
    g.edges()
        .iter()
        .filter(|e| side[e.u as usize] != side[e.v as usize])
        .map(|e| e.w as u128)
        .sum()
}

/// Minimum weighted degree and its vertex — the best *singleton* cut.
/// Returns `None` for graphs with no vertices.
pub fn min_weighted_degree(g: &Graph) -> Option<(VertexId, u128)> {
    if g.n() == 0 {
        return None;
    }
    let mut wdeg = vec![0u128; g.n()];
    for e in g.edges() {
        wdeg[e.u as usize] += e.w as u128;
        wdeg[e.v as usize] += e.w as u128;
    }
    wdeg.into_iter()
        .enumerate()
        .min_by_key(|&(_, w)| w)
        .map(|(v, w)| (v as VertexId, w))
}

/// Result of a global min-cut computation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MinCut {
    /// Total weight of the cut.
    pub weight: u128,
    /// One side of the cut (original vertex ids).
    pub side: Vec<VertexId>,
}

/// Stoer–Wagner global minimum cut on a weighted (multi)graph.
///
/// Parallel edges are merged by weight summation, matching multigraph
/// semantics of the contraction algorithms. `O(n³)` time — intended for the
/// large machine's *contracted* graphs, which have few vertices.
///
/// Returns `None` if the graph is disconnected (min cut 0 with an empty edge
/// set across it) — callers treat disconnection separately — or has < 2
/// vertices.
pub fn stoer_wagner(n: usize, edges: &[(VertexId, VertexId, Weight)]) -> Option<MinCut> {
    if n < 2 {
        return None;
    }
    // Dense weight matrix with parallel edges summed.
    let mut w = vec![vec![0u128; n]; n];
    for &(u, v, wt) in edges {
        if u == v {
            continue;
        }
        w[u as usize][v as usize] += wt as u128;
        w[v as usize][u as usize] += wt as u128;
    }
    // merged[v] = original vertices currently fused into v.
    let mut merged: Vec<Vec<VertexId>> = (0..n as VertexId).map(|v| vec![v]).collect();
    let mut active: Vec<usize> = (0..n).collect();
    let mut best: Option<MinCut> = None;

    while active.len() > 1 {
        // Maximum-adjacency search.
        let mut weights = vec![0u128; n];
        let mut in_a = vec![false; n];
        let mut order = Vec::with_capacity(active.len());
        for _ in 0..active.len() {
            let &next = active
                .iter()
                .filter(|&&v| !in_a[v])
                .max_by_key(|&&v| weights[v])
                .expect("active vertex exists");
            in_a[next] = true;
            order.push(next);
            for &v in &active {
                if !in_a[v] {
                    weights[v] += w[next][v];
                }
            }
        }
        let t = *order.last().unwrap();
        let s = order[order.len() - 2];
        let cut_of_phase = weights[t];
        let candidate = MinCut {
            weight: cut_of_phase,
            side: merged[t].clone(),
        };
        if best.as_ref().is_none_or(|b| candidate.weight < b.weight) {
            best = Some(candidate);
        }
        // Merge t into s.
        let t_merged = std::mem::take(&mut merged[t]);
        merged[s].extend(t_merged);
        for &v in &active {
            if v != s && v != t {
                w[s][v] += w[t][v];
                w[v][s] = w[s][v];
            }
        }
        active.retain(|&v| v != t);
    }
    let best = best.expect("n >= 2 yields at least one phase");
    if best.weight == 0 && !is_connected_edge_list(n, edges) {
        None
    } else {
        Some(best)
    }
}

fn is_connected_edge_list(n: usize, edges: &[(VertexId, VertexId, Weight)]) -> bool {
    let mut dsu = crate::dsu::DisjointSets::new(n);
    for &(u, v, _) in edges {
        dsu.union(u, v);
    }
    dsu.component_count() == 1
}

/// Convenience wrapper: Stoer–Wagner over a [`Graph`].
pub fn min_cut(g: &Graph) -> Option<MinCut> {
    let edges: Vec<(VertexId, VertexId, Weight)> =
        g.edges().iter().map(|e| (e.u, e.v, e.w)).collect();
    stoer_wagner(g.n(), &edges)
}

/// Exhaustive minimum cut (2^(n−1) subsets); oracle for tiny graphs.
pub fn min_cut_bruteforce(g: &Graph) -> Option<u128> {
    let n = g.n();
    if !(2..=20).contains(&n) {
        return None;
    }
    let mut best = u128::MAX;
    for mask in 1u32..(1u32 << (n - 1)) {
        let side: Vec<bool> = (0..n).map(|v| mask >> v & 1 == 1).collect();
        best = best.min(cut_value(g, &side));
    }
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn matches_bruteforce_on_small_graphs() {
        for seed in 0..6 {
            let g = generators::gnm(9, 18, seed).with_random_weights(20, seed);
            let brute = min_cut_bruteforce(&g).unwrap();
            match min_cut(&g) {
                Some(mc) => assert_eq!(mc.weight, brute, "seed {seed}"),
                None => assert_eq!(brute, 0, "seed {seed}"),
            }
        }
    }

    #[test]
    fn planted_cut_is_found() {
        let g = generators::planted_cut(12, 0.8, 2, 3);
        let mc = min_cut(&g).unwrap();
        assert_eq!(mc.weight, 2);
        assert_eq!(mc.side.len(), 12);
    }

    #[test]
    fn parallel_edges_sum() {
        let mc = stoer_wagner(2, &[(0, 1, 3), (0, 1, 4)]).unwrap();
        assert_eq!(mc.weight, 7);
    }

    #[test]
    fn disconnected_returns_none() {
        assert!(stoer_wagner(3, &[(0, 1, 5)]).is_none());
        assert!(stoer_wagner(1, &[]).is_none());
    }

    #[test]
    fn singleton_cut_helper() {
        let g = generators::star(4); // center 0, degree 3; leaves degree 1
        let (v, w) = min_weighted_degree(&g).unwrap();
        assert!(v >= 1);
        assert_eq!(w, 1);
    }

    #[test]
    fn cut_value_counts_crossing_edges() {
        let g = generators::path(4);
        assert_eq!(cut_value(&g, &[true, true, false, false]), 1);
        assert_eq!(cut_value(&g, &[true, false, true, false]), 3);
    }
}
