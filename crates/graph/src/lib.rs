//! Graph substrate for the `het-mpc` workspace.
//!
//! This crate provides everything the heterogeneous-MPC algorithms of
//! Fischer, Horowitz & Oshman (PODC 2022) need from a graph library:
//!
//! * compact graph types with the paper's weight conventions
//!   (positive integer weights, made unique via [`WeightKey`] tie-breaking),
//! * workload generators (uniform `G(n,m)`, the 1-vs-2 cycle family used by
//!   the conditional hardness discussion, grids, power-law graphs, trees, …),
//! * **sequential reference algorithms** used as correctness oracles for the
//!   distributed implementations (Kruskal MST, BFS/Dijkstra, greedy maximal
//!   matching, greedy MIS, greedy coloring, Stoer–Wagner min cut),
//! * validators (`is_matching`, `is_maximal_independent_set`,
//!   `verify_spanner`, …) used by tests and by the benchmark harness, and
//! * helpers for sharding an edge list across MPC machines.
//!
//! # Example
//!
//! ```
//! use mpc_graph::{generators, mst};
//!
//! let g = generators::gnm(100, 400, 7).with_random_weights(1_000, 7);
//! let forest = mst::kruskal(&g);
//! assert_eq!(forest.edges.len(), 99); // this G(n, 4n) instance is connected
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checks;
pub mod coloring;
pub mod distribution;
pub mod dsu;
pub mod generators;
pub mod graph;
pub mod ids;
pub mod matching;
pub mod mincut;
pub mod mis;
pub mod mst;
pub mod traversal;

pub use checks::{is_spanning_forest, verify_spanner, SpannerReport};
pub use dsu::DisjointSets;
pub use graph::{Adjacency, Graph};
pub use ids::{Edge, VertexId, Weight, WeightKey};
pub use mst::Forest;
