//! Sequential matching algorithms and validators.

use crate::graph::Graph;
use crate::ids::{Edge, VertexId};

/// A matching: a set of vertex-disjoint edges.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Matching {
    /// The matched edges.
    pub edges: Vec<Edge>,
}

impl Matching {
    /// An empty matching.
    pub fn new() -> Self {
        Matching { edges: Vec::new() }
    }

    /// Number of matched edges.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether no edge is matched.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Boolean matched-vertex mask of length `n`.
    pub fn matched_mask(&self, n: usize) -> Vec<bool> {
        let mut mask = vec![false; n];
        for e in &self.edges {
            mask[e.u as usize] = true;
            mask[e.v as usize] = true;
        }
        mask
    }

    /// Unions two matchings (caller guarantees disjointness; validated in
    /// debug builds).
    pub fn extend_disjoint(&mut self, other: &Matching) {
        self.edges.extend(other.edges.iter().copied());
        debug_assert!({
            let max = self
                .edges
                .iter()
                .flat_map(|e| [e.u, e.v])
                .max()
                .map_or(0, |x| x as usize + 1);
            is_matching(max, &self.edges)
        });
    }
}

/// Whether `edges` form a matching (no shared endpoints, no loops).
pub fn is_matching(n: usize, edges: &[Edge]) -> bool {
    let mut used = vec![false; n];
    for e in edges {
        if e.is_loop() {
            return false;
        }
        let (u, v) = (e.u as usize, e.v as usize);
        if u >= n || v >= n || used[u] || used[v] {
            return false;
        }
        used[u] = true;
        used[v] = true;
    }
    true
}

/// Whether `m` is a *maximal* matching of `g`: a matching such that every
/// edge of `g` has a matched endpoint.
pub fn is_maximal_matching(g: &Graph, m: &Matching) -> bool {
    if !is_matching(g.n(), &m.edges) {
        return false;
    }
    let mask = m.matched_mask(g.n());
    g.edges()
        .iter()
        .all(|e| mask[e.u as usize] || mask[e.v as usize])
}

/// Greedy maximal matching scanning edges in the given order.
pub fn greedy_maximal_matching(g: &Graph) -> Matching {
    greedy_matching_over(g.n(), g.edges().iter().copied(), &[])
}

/// Greedy matching over an arbitrary edge stream, starting from a
/// pre-matched vertex mask (vertices already matched elsewhere).
///
/// This is exactly what the paper's large machine runs in Phases 2–3 of the
/// maximal-matching algorithm (§5) and in the filtering algorithm (Thm 5.5).
pub fn greedy_matching_over(
    n: usize,
    edges: impl IntoIterator<Item = Edge>,
    pre_matched: &[VertexId],
) -> Matching {
    let mut used = vec![false; n];
    for &v in pre_matched {
        used[v as usize] = true;
    }
    let mut out = Matching::new();
    for e in edges {
        if e.is_loop() {
            continue;
        }
        if !used[e.u as usize] && !used[e.v as usize] {
            used[e.u as usize] = true;
            used[e.v as usize] = true;
            out.edges.push(e);
        }
    }
    out
}

/// Size of a maximum matching, by exhaustive search. Exponential; only for
/// tiny test graphs (`m <= 20`).
pub fn maximum_matching_size_bruteforce(g: &Graph) -> usize {
    let edges = g.edges();
    assert!(edges.len() <= 20, "bruteforce limited to 20 edges");
    let mut best = 0usize;
    for mask in 0u32..(1u32 << edges.len()) {
        let chosen: Vec<Edge> = (0..edges.len())
            .filter(|i| mask >> i & 1 == 1)
            .map(|i| edges[i])
            .collect();
        if is_matching(g.n(), &chosen) {
            best = best.max(chosen.len());
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn greedy_is_maximal() {
        for seed in 0..6 {
            let g = generators::gnm(60, 180, seed);
            let m = greedy_maximal_matching(&g);
            assert!(is_maximal_matching(&g, &m), "seed {seed}");
        }
    }

    #[test]
    fn maximal_at_least_half_of_maximum() {
        let g = generators::gnm(12, 18, 4);
        let m = greedy_maximal_matching(&g);
        let opt = maximum_matching_size_bruteforce(&g);
        assert!(2 * m.len() >= opt);
    }

    #[test]
    fn detects_non_matching() {
        let e = [Edge::unweighted(0, 1), Edge::unweighted(1, 2)];
        assert!(!is_matching(3, &e));
        assert!(is_matching(3, &e[..1]));
    }

    #[test]
    fn pre_matched_vertices_are_respected() {
        let g = generators::complete(4);
        let m = greedy_matching_over(4, g.edges().iter().copied(), &[0, 1]);
        assert_eq!(m.len(), 1);
        let e = m.edges[0];
        assert!(e.u >= 2 && e.v >= 2);
    }

    #[test]
    fn non_maximal_is_rejected() {
        let g = generators::path(4); // 0-1-2-3
        let m = Matching {
            edges: vec![Edge::unweighted(1, 2)],
        };
        // Edge 0-1 and 2-3 are covered; this IS maximal for the path.
        assert!(is_maximal_matching(&g, &m));
        let m2 = Matching {
            edges: vec![Edge::unweighted(0, 1)],
        };
        // Edge 2-3 has no matched endpoint: not maximal.
        assert!(!is_maximal_matching(&g, &m2));
    }
}
