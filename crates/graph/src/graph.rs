//! The [`Graph`] type: an edge-list graph with an on-demand adjacency view.

use crate::ids::{Edge, VertexId, Weight};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// An undirected graph on the fixed vertex set `{0, …, n−1}`.
///
/// Graphs are stored as normalized edge lists, matching the MPC setting where
/// the input is a bag of edges scattered across machines (§2 of the paper).
/// Self-loops are rejected; parallel edges are deduplicated on construction
/// (keeping the lightest copy, consistent with MST semantics).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Graph {
    n: usize,
    edges: Vec<Edge>,
}

impl Graph {
    /// Builds a graph from an edge list.
    ///
    /// Endpoints are normalized, self-loops dropped, and parallel edges
    /// deduplicated keeping the copy with the smallest [`crate::WeightKey`].
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is `>= n`.
    pub fn new(n: usize, edges: impl IntoIterator<Item = Edge>) -> Self {
        let mut es: Vec<Edge> = edges
            .into_iter()
            .filter(|e| !e.is_loop())
            .map(Edge::normalized)
            .collect();
        for e in &es {
            assert!(
                (e.u as usize) < n && (e.v as usize) < n,
                "edge {e:?} out of range for n={n}"
            );
        }
        es.sort_by_key(|e| (e.u, e.v, e.w));
        es.dedup_by_key(|e| (e.u, e.v));
        Graph { n, edges: es }
    }

    /// A graph with `n` vertices and no edges.
    pub fn empty(n: usize) -> Self {
        Graph {
            n,
            edges: Vec::new(),
        }
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of edges.
    pub fn m(&self) -> usize {
        self.edges.len()
    }

    /// The normalized, deduplicated edge list.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Consumes the graph, returning its edge list.
    pub fn into_edges(self) -> Vec<Edge> {
        self.edges
    }

    /// Iterates over vertex ids `0..n`.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        0..self.n as VertexId
    }

    /// Average degree `2m/n` (the paper's `d`), or 0 for the empty graph.
    pub fn average_degree(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            2.0 * self.m() as f64 / self.n as f64
        }
    }

    /// Edge density `m/n` (the paper's recurring parameter `m/n`).
    pub fn density(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m() as f64 / self.n as f64
        }
    }

    /// Per-vertex degrees.
    pub fn degrees(&self) -> Vec<usize> {
        let mut deg = vec![0usize; self.n];
        for e in &self.edges {
            deg[e.u as usize] += 1;
            deg[e.v as usize] += 1;
        }
        deg
    }

    /// Maximum degree Δ.
    pub fn max_degree(&self) -> usize {
        self.degrees().into_iter().max().unwrap_or(0)
    }

    /// Builds the adjacency view (CSR layout) for traversal algorithms.
    pub fn adjacency(&self) -> Adjacency {
        Adjacency::build(self)
    }

    /// Returns the same graph with every weight replaced by a fresh uniform
    /// sample from `1..=max_weight`, deterministically derived from `seed`.
    ///
    /// Weights need not be unique — all algorithms in the workspace break
    /// ties with [`crate::WeightKey`].
    pub fn with_random_weights(mut self, max_weight: Weight, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
        for e in &mut self.edges {
            e.w = rng.random_range(1..=max_weight.max(1));
        }
        self
    }

    /// Returns the subgraph containing only edges accepted by `keep`.
    pub fn filter_edges(&self, mut keep: impl FnMut(&Edge) -> bool) -> Graph {
        Graph {
            n: self.n,
            edges: self.edges.iter().copied().filter(|e| keep(e)).collect(),
        }
    }

    /// Returns the subgraph induced by the vertex set `verts`
    /// (vertex ids are preserved; the vertex count stays `n`).
    pub fn induced(&self, verts: &[bool]) -> Graph {
        assert_eq!(verts.len(), self.n, "induced(): mask length must equal n");
        self.filter_edges(|e| verts[e.u as usize] && verts[e.v as usize])
    }

    /// Total weight of all edges.
    pub fn total_weight(&self) -> u128 {
        self.edges.iter().map(|e| e.w as u128).sum()
    }
}

/// Compressed-sparse-row adjacency view over a [`Graph`].
///
/// Borrow-free (owns its arrays) so it can outlive temporary graphs and be
/// shipped to worker threads by the bench harness.
#[derive(Clone, Debug)]
pub struct Adjacency {
    offsets: Vec<usize>,
    /// `(neighbor, weight)` pairs, grouped by source vertex.
    targets: Vec<(VertexId, Weight)>,
}

impl Adjacency {
    fn build(g: &Graph) -> Self {
        let n = g.n();
        let mut counts = vec![0usize; n + 1];
        for e in g.edges() {
            counts[e.u as usize + 1] += 1;
            counts[e.v as usize + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let offsets = counts.clone();
        let mut cursor = counts;
        let mut targets = vec![(0 as VertexId, 0 as Weight); 2 * g.m()];
        for e in g.edges() {
            targets[cursor[e.u as usize]] = (e.v, e.w);
            cursor[e.u as usize] += 1;
            targets[cursor[e.v as usize]] = (e.u, e.w);
            cursor[e.v as usize] += 1;
        }
        Adjacency { offsets, targets }
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The `(neighbor, weight)` list of `v`.
    pub fn neighbors(&self, v: VertexId) -> &[(VertexId, Weight)] {
        &self.targets[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// Degree of `v`.
    pub fn degree(&self, v: VertexId) -> usize {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        Graph::new(
            3,
            [Edge::new(0, 1, 5), Edge::new(1, 2, 3), Edge::new(2, 0, 4)],
        )
    }

    #[test]
    fn dedup_keeps_lightest_parallel_edge() {
        let g = Graph::new(
            2,
            [Edge::new(0, 1, 9), Edge::new(1, 0, 4), Edge::new(0, 1, 7)],
        );
        assert_eq!(g.m(), 1);
        assert_eq!(g.edges()[0].w, 4);
    }

    #[test]
    fn drops_self_loops() {
        let g = Graph::new(2, [Edge::new(0, 0, 1), Edge::new(0, 1, 1)]);
        assert_eq!(g.m(), 1);
    }

    #[test]
    #[should_panic]
    fn rejects_out_of_range() {
        Graph::new(2, [Edge::new(0, 2, 1)]);
    }

    #[test]
    fn degrees_and_max_degree() {
        let g = triangle();
        assert_eq!(g.degrees(), vec![2, 2, 2]);
        assert_eq!(g.max_degree(), 2);
        assert_eq!(g.average_degree(), 2.0);
    }

    #[test]
    fn adjacency_roundtrip() {
        let g = triangle();
        let adj = g.adjacency();
        assert_eq!(adj.degree(0), 2);
        let mut ns: Vec<_> = adj.neighbors(1).iter().map(|&(v, _)| v).collect();
        ns.sort();
        assert_eq!(ns, vec![0, 2]);
    }

    #[test]
    fn random_weights_in_range_and_deterministic() {
        let g = triangle().with_random_weights(10, 3);
        let h = triangle().with_random_weights(10, 3);
        assert_eq!(g, h);
        assert!(g.edges().iter().all(|e| (1..=10).contains(&e.w)));
    }

    #[test]
    fn induced_subgraph() {
        let g = triangle();
        let sub = g.induced(&[true, true, false]);
        assert_eq!(sub.m(), 1);
        assert_eq!(sub.edges()[0], Edge::new(0, 1, 5));
    }
}
