//! Core identifier and edge types shared across the workspace.

use std::fmt;

/// A vertex identifier in `0..n`.
///
/// The paper fixes the vertex set `V = {0, …, n−1}` in advance (§2); only the
/// edges are distributed. `u32` comfortably covers the simulator's scale.
pub type VertexId = u32;

/// An integer edge weight in `1..=poly(n)`, per the paper's convention (§2).
pub type Weight = u64;

/// An undirected, weighted edge.
///
/// Stored with `u <= v` after [`Edge::normalized`]. Unweighted graphs use
/// weight `1` everywhere. An edge costs 2 machine words in the MPC accounting
/// (packed endpoints + weight), see `mpc-runtime`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Edge {
    /// First endpoint.
    pub u: VertexId,
    /// Second endpoint.
    pub v: VertexId,
    /// Positive integer weight.
    pub w: Weight,
}

impl Edge {
    /// Creates a new edge; endpoints are kept in the given order.
    pub fn new(u: VertexId, v: VertexId, w: Weight) -> Self {
        Edge { u, v, w }
    }

    /// Creates an unweighted edge (weight 1).
    pub fn unweighted(u: VertexId, v: VertexId) -> Self {
        Edge { u, v, w: 1 }
    }

    /// Returns the edge with endpoints ordered so `u <= v`.
    pub fn normalized(self) -> Self {
        if self.u <= self.v {
            self
        } else {
            Edge {
                u: self.v,
                v: self.u,
                w: self.w,
            }
        }
    }

    /// Returns the same edge oriented in the opposite direction.
    pub fn reversed(self) -> Self {
        Edge {
            u: self.v,
            v: self.u,
            w: self.w,
        }
    }

    /// The endpoint different from `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not an endpoint of this edge.
    pub fn other(&self, x: VertexId) -> VertexId {
        if x == self.u {
            self.v
        } else if x == self.v {
            self.u
        } else {
            panic!("vertex {x} is not an endpoint of {self:?}")
        }
    }

    /// Whether the edge is a self-loop.
    pub fn is_loop(&self) -> bool {
        self.u == self.v
    }

    /// The strict total order on edges used throughout the workspace.
    ///
    /// The paper assumes all edge weights are unique (§2). We do not require
    /// this of inputs; instead every comparison goes through this key, which
    /// breaks weight ties by the normalized endpoint pair, yielding a strict
    /// total order under which "the MST" and "the heaviest edge on a path"
    /// are unique for any input.
    pub fn weight_key(&self) -> WeightKey {
        let e = self.normalized();
        WeightKey {
            w: e.w,
            u: e.u,
            v: e.v,
        }
    }
}

impl fmt::Debug for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}-{} w{})", self.u, self.v, self.w)
    }
}

/// Lexicographic `(weight, u, v)` key inducing a strict total order on edges.
///
/// See [`Edge::weight_key`]. Implements the paper's "unique weights"
/// assumption for arbitrary inputs.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct WeightKey {
    /// The numeric weight (most significant).
    pub w: Weight,
    /// Smaller normalized endpoint.
    pub u: VertexId,
    /// Larger normalized endpoint.
    pub v: VertexId,
}

impl WeightKey {
    /// A key larger than every real edge key (used as "+infinity").
    pub const INFINITY: WeightKey = WeightKey {
        w: Weight::MAX,
        u: VertexId::MAX,
        v: VertexId::MAX,
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalized_orders_endpoints() {
        assert_eq!(Edge::new(5, 2, 9).normalized(), Edge::new(2, 5, 9));
        assert_eq!(Edge::new(2, 5, 9).normalized(), Edge::new(2, 5, 9));
    }

    #[test]
    fn weight_key_breaks_ties() {
        let a = Edge::new(1, 2, 7);
        let b = Edge::new(1, 3, 7);
        assert!(a.weight_key() < b.weight_key());
        // Orientation does not matter.
        assert_eq!(a.weight_key(), a.reversed().weight_key());
    }

    #[test]
    fn other_endpoint() {
        let e = Edge::new(3, 8, 1);
        assert_eq!(e.other(3), 8);
        assert_eq!(e.other(8), 3);
    }

    #[test]
    #[should_panic]
    fn other_panics_on_non_endpoint() {
        Edge::new(3, 8, 1).other(5);
    }

    #[test]
    fn infinity_dominates() {
        let e = Edge::new(0, 1, Weight::MAX);
        assert!(e.weight_key() < WeightKey::INFINITY);
    }
}
