//! Sequential minimum-spanning-forest algorithms (reference oracles).
//!
//! Under the workspace's strict total edge order ([`crate::WeightKey`]), the
//! minimum spanning forest of any graph is unique, so distributed MST
//! implementations are validated by exact edge-set equality against
//! [`kruskal`].

use crate::dsu::DisjointSets;
use crate::graph::Graph;
use crate::ids::{Edge, WeightKey};

/// A spanning forest: the selected edges plus their total weight.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Forest {
    /// Forest edges, sorted by [`Edge::weight_key`].
    pub edges: Vec<Edge>,
    /// Sum of edge weights.
    pub total_weight: u128,
}

impl Forest {
    /// Builds a forest record from an edge set (sorts and sums).
    pub fn from_edges(mut edges: Vec<Edge>) -> Self {
        edges.sort_by_key(Edge::weight_key);
        let total_weight = edges.iter().map(|e| e.w as u128).sum();
        Forest {
            edges,
            total_weight,
        }
    }

    /// Number of forest edges.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether the forest has no edges.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// The normalized edge set as a sorted vector of weight keys
    /// (for equality checks that ignore orientation).
    pub fn keys(&self) -> Vec<WeightKey> {
        let mut k: Vec<WeightKey> = self.edges.iter().map(Edge::weight_key).collect();
        k.sort();
        k
    }
}

/// Kruskal's algorithm; returns the unique minimum spanning forest under the
/// [`crate::WeightKey`] order.
pub fn kruskal(g: &Graph) -> Forest {
    let mut order: Vec<Edge> = g.edges().to_vec();
    order.sort_by_key(Edge::weight_key);
    let mut dsu = DisjointSets::new(g.n());
    let mut picked = Vec::with_capacity(g.n().saturating_sub(1));
    for e in order {
        if dsu.union(e.u, e.v) {
            picked.push(e);
        }
    }
    Forest::from_edges(picked)
}

/// Single-machine Borůvka; used to cross-check Kruskal and as the local MSF
/// subroutine of the large machine.
pub fn boruvka(g: &Graph) -> Forest {
    let n = g.n();
    let mut dsu = DisjointSets::new(n);
    let mut picked: Vec<Edge> = Vec::new();
    loop {
        // Lightest outgoing edge per current component.
        let mut best: Vec<Option<Edge>> = vec![None; n];
        let mut any = false;
        for &e in g.edges() {
            let (ru, rv) = (dsu.find(e.u) as usize, dsu.find(e.v) as usize);
            if ru == rv {
                continue;
            }
            any = true;
            for r in [ru, rv] {
                if best[r].is_none_or(|b| e.weight_key() < b.weight_key()) {
                    best[r] = Some(e);
                }
            }
        }
        if !any {
            break;
        }
        let mut merged = false;
        for r in 0..n {
            if let Some(e) = best[r] {
                if dsu.union(e.u, e.v) {
                    picked.push(e);
                    merged = true;
                }
            }
        }
        debug_assert!(
            merged,
            "Borůvka must make progress while outgoing edges exist"
        );
    }
    Forest::from_edges(picked)
}

/// Classifies `e` as F-light or F-heavy with respect to forest `F` (§3).
///
/// `e` is *F-heavy* iff its endpoints are connected in `F` and `e` is the
/// strictly heaviest edge (by [`crate::WeightKey`]) on the cycle it closes;
/// otherwise it is *F-light*. Only F-light edges can be MST edges of a graph
/// containing `F` (Lemma 3.2 context).
pub fn is_f_light(forest: &Graph, e: &Edge) -> bool {
    // Reference implementation: BFS through the forest from e.u to e.v,
    // tracking the max edge key on the path.
    let adj = forest.adjacency();
    let n = forest.n();
    let mut seen = vec![false; n];
    let mut stack = vec![(e.u, WeightKey { w: 0, u: 0, v: 0 })];
    seen[e.u as usize] = true;
    let mut path_max: Option<WeightKey> = None;
    while let Some((x, mx)) = stack.pop() {
        if x == e.v {
            path_max = Some(mx);
            break;
        }
        for &(y, w) in adj.neighbors(x) {
            if !seen[y as usize] {
                seen[y as usize] = true;
                let key = Edge::new(x, y, w).weight_key();
                stack.push((y, mx.max(key)));
            }
        }
    }
    match path_max {
        None => true, // endpoints not connected in F
        Some(mx) => e.weight_key() < mx,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn kruskal_matches_boruvka_on_random_graphs() {
        for seed in 0..8 {
            let g = generators::gnm(80, 300, seed).with_random_weights(1000, seed);
            let a = kruskal(&g);
            let b = boruvka(&g);
            assert_eq!(a.keys(), b.keys(), "seed {seed}");
            assert_eq!(a.total_weight, b.total_weight);
        }
    }

    #[test]
    fn forest_count_matches_components() {
        let g = generators::random_forest(50, 5, 2);
        let f = kruskal(&g);
        assert_eq!(f.len(), 50 - 5);
    }

    #[test]
    fn f_light_classification() {
        use crate::ids::Edge;
        // Forest: path 0-1-2 with weights 5, 9.
        let f = Graph::new(4, [Edge::new(0, 1, 5), Edge::new(1, 2, 9)]);
        // Edge 0-2 with weight 7 < 9 (max on path): light.
        assert!(is_f_light(&f, &Edge::new(0, 2, 7)));
        // Edge 0-2 with weight 12 > 9: heavy.
        assert!(!is_f_light(&f, &Edge::new(0, 2, 12)));
        // Edge to isolated vertex 3: light (not connected).
        assert!(is_f_light(&f, &Edge::new(0, 3, 100)));
    }

    #[test]
    fn mst_weight_is_minimal_among_spanning_trees_small() {
        // Exhaustive check on a tiny graph: every spanning tree weighs at
        // least as much as Kruskal's.
        let g = generators::complete(5).with_random_weights(50, 7);
        let f = kruskal(&g);
        let edges = g.edges();
        let m = edges.len();
        let mut best = u128::MAX;
        for mask in 0u32..(1 << m) {
            if mask.count_ones() != 4 {
                continue;
            }
            let chosen: Vec<_> = (0..m)
                .filter(|i| mask >> i & 1 == 1)
                .map(|i| edges[i])
                .collect();
            let mut dsu = DisjointSets::new(5);
            let mut ok = true;
            for e in &chosen {
                ok &= dsu.union(e.u, e.v);
            }
            if ok {
                best = best.min(chosen.iter().map(|e| e.w as u128).sum());
            }
        }
        assert_eq!(f.total_weight, best);
    }
}
