//! Deterministic (seeded) workload generators.
//!
//! Every generator is a pure function of its parameters and a `seed`, so all
//! experiments in `EXPERIMENTS.md` are reproducible bit-for-bit. Weights
//! default to 1 (unweighted); compose with
//! [`Graph::with_random_weights`](crate::Graph::with_random_weights) for
//! weighted workloads.

use crate::graph::Graph;
use crate::ids::{Edge, VertexId};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

fn rng_for(seed: u64, salt: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ salt)
}

/// Uniform random graph with exactly `m` distinct edges (no loops).
///
/// # Panics
///
/// Panics if `m > n(n-1)/2`.
pub fn gnm(n: usize, m: usize, seed: u64) -> Graph {
    let max = n.saturating_mul(n.saturating_sub(1)) / 2;
    assert!(m <= max, "gnm: m={m} exceeds max {max} for n={n}");
    let mut rng = rng_for(seed, 0xA11CE);
    // Dense instances sample by shuffling the full edge universe; sparse ones
    // by rejection.
    if m * 3 > max {
        let mut all = Vec::with_capacity(max);
        for u in 0..n as VertexId {
            for v in (u + 1)..n as VertexId {
                all.push((u, v));
            }
        }
        all.shuffle(&mut rng);
        return Graph::new(n, all[..m].iter().map(|&(u, v)| Edge::unweighted(u, v)));
    }
    let mut seen = HashSet::with_capacity(m * 2);
    let mut edges = Vec::with_capacity(m);
    while edges.len() < m {
        let u = rng.random_range(0..n as VertexId);
        let v = rng.random_range(0..n as VertexId);
        if u == v {
            continue;
        }
        let key = if u < v { (u, v) } else { (v, u) };
        if seen.insert(key) {
            edges.push(Edge::unweighted(key.0, key.1));
        }
    }
    Graph::new(n, edges)
}

/// Erdős–Rényi `G(n, p)`: each pair independently with probability `p`.
pub fn gnp(n: usize, p: f64, seed: u64) -> Graph {
    assert!((0.0..=1.0).contains(&p), "gnp: p must be in [0,1]");
    let mut rng = rng_for(seed, 0x6E9);
    let mut edges = Vec::new();
    for u in 0..n as VertexId {
        for v in (u + 1)..n as VertexId {
            if rng.random_bool(p) {
                edges.push(Edge::unweighted(u, v));
            }
        }
    }
    Graph::new(n, edges)
}

/// A single cycle through all `n` vertices, in a seeded random vertex order.
///
/// The "1" side of the 1-vs-2 cycle problem from the paper's introduction.
pub fn cycle(n: usize, seed: u64) -> Graph {
    assert!(n >= 3, "cycle: need n >= 3");
    let mut order: Vec<VertexId> = (0..n as VertexId).collect();
    order.shuffle(&mut rng_for(seed, 0xC1C1E));
    let mut edges = Vec::with_capacity(n);
    for i in 0..n {
        edges.push(Edge::unweighted(order[i], order[(i + 1) % n]));
    }
    Graph::new(n, edges)
}

/// Two vertex-disjoint cycles covering all `n` vertices (sizes `n/2`, `n−n/2`).
///
/// The "2" side of the 1-vs-2 cycle problem; distinguishing this from
/// [`cycle`] is conjectured to need `Ω(log n)` rounds in sublinear MPC but is
/// trivial with one near-linear machine (§1).
pub fn two_cycles(n: usize, seed: u64) -> Graph {
    assert!(n >= 6, "two_cycles: need n >= 6");
    let mut order: Vec<VertexId> = (0..n as VertexId).collect();
    order.shuffle(&mut rng_for(seed, 0x2C1C1E));
    let half = n / 2;
    let mut edges = Vec::with_capacity(n);
    for i in 0..half {
        edges.push(Edge::unweighted(order[i], order[(i + 1) % half]));
    }
    for i in half..n {
        let next = if i + 1 == n { half } else { i + 1 };
        edges.push(Edge::unweighted(order[i], order[next]));
    }
    Graph::new(n, edges)
}

/// Simple path `0-1-…-(n−1)`.
pub fn path(n: usize) -> Graph {
    let edges = (1..n as VertexId).map(|v| Edge::unweighted(v - 1, v));
    Graph::new(n, edges)
}

/// Star with center 0 and `n−1` leaves.
pub fn star(n: usize) -> Graph {
    let edges = (1..n as VertexId).map(|v| Edge::unweighted(0, v));
    Graph::new(n, edges)
}

/// Complete graph `K_n`.
pub fn complete(n: usize) -> Graph {
    let mut edges = Vec::with_capacity(n * (n - 1) / 2);
    for u in 0..n as VertexId {
        for v in (u + 1)..n as VertexId {
            edges.push(Edge::unweighted(u, v));
        }
    }
    Graph::new(n, edges)
}

/// `rows × cols` grid graph.
pub fn grid(rows: usize, cols: usize) -> Graph {
    let id = |r: usize, c: usize| (r * cols + c) as VertexId;
    let mut edges = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                edges.push(Edge::unweighted(id(r, c), id(r, c + 1)));
            }
            if r + 1 < rows {
                edges.push(Edge::unweighted(id(r, c), id(r + 1, c)));
            }
        }
    }
    Graph::new(rows * cols, edges)
}

/// Uniform random spanning tree on `n` vertices (random Prüfer sequence).
pub fn random_tree(n: usize, seed: u64) -> Graph {
    assert!(n >= 1);
    if n == 1 {
        return Graph::empty(1);
    }
    if n == 2 {
        return Graph::new(2, [Edge::unweighted(0, 1)]);
    }
    let mut rng = rng_for(seed, 0x7EE);
    let prufer: Vec<VertexId> = (0..n - 2)
        .map(|_| rng.random_range(0..n as VertexId))
        .collect();
    let mut degree = vec![1u32; n];
    for &x in &prufer {
        degree[x as usize] += 1;
    }
    let mut edges = Vec::with_capacity(n - 1);
    // Standard O(n log n) Prüfer decoding with a min-heap of leaves.
    let mut leaves: std::collections::BinaryHeap<std::cmp::Reverse<VertexId>> = (0..n as VertexId)
        .filter(|&v| degree[v as usize] == 1)
        .map(std::cmp::Reverse)
        .collect();
    for &x in &prufer {
        let std::cmp::Reverse(leaf) = leaves.pop().expect("prufer decoding invariant");
        edges.push(Edge::unweighted(leaf, x));
        degree[x as usize] -= 1;
        if degree[x as usize] == 1 {
            leaves.push(std::cmp::Reverse(x));
        }
    }
    let std::cmp::Reverse(a) = leaves.pop().unwrap();
    let std::cmp::Reverse(b) = leaves.pop().unwrap();
    edges.push(Edge::unweighted(a, b));
    Graph::new(n, edges)
}

/// A forest: `trees` independent random trees of roughly equal size.
pub fn random_forest(n: usize, trees: usize, seed: u64) -> Graph {
    assert!(trees >= 1 && trees <= n.max(1));
    let mut edges = Vec::new();
    let base = n / trees;
    let mut start = 0usize;
    for t in 0..trees {
        let size = if t + 1 == trees { n - start } else { base };
        if size >= 2 {
            let sub = random_tree(size, seed.wrapping_add(t as u64));
            edges.extend(
                sub.edges()
                    .iter()
                    .map(|e| Edge::unweighted(e.u + start as VertexId, e.v + start as VertexId)),
            );
        }
        start += size;
    }
    Graph::new(n, edges)
}

/// Chung–Lu power-law graph: vertex `i` gets expected degree
/// `∝ (i+1)^(−1/(β−1))`, scaled so the expected edge count is ≈ `target_m`.
///
/// Produces skewed degree distributions (a few very high-degree vertices),
/// the regime where the paper's maximal-matching algorithm shines: average
/// degree `d ≪ Δ`.
pub fn chung_lu(n: usize, target_m: usize, beta: f64, seed: u64) -> Graph {
    assert!(beta > 2.0, "chung_lu: beta must exceed 2");
    let mut rng = rng_for(seed, 0xC41);
    let exp = -1.0 / (beta - 1.0);
    let w: Vec<f64> = (0..n).map(|i| ((i + 1) as f64).powf(exp)).collect();
    let total: f64 = w.iter().sum();
    // Scale so sum of expected degrees = 2 * target_m.
    let scale = (2.0 * target_m as f64) / total;
    let w: Vec<f64> = w.iter().map(|x| x * scale).collect();
    let s: f64 = w.iter().sum();
    let mut edges = Vec::new();
    for u in 0..n {
        for v in (u + 1)..n {
            let p = (w[u] * w[v] / s).min(1.0);
            if p > 0.0 && rng.random_bool(p) {
                edges.push(Edge::unweighted(u as VertexId, v as VertexId));
            }
        }
    }
    Graph::new(n, edges)
}

/// Approximately `d`-regular graph via the configuration model
/// (loops/multi-edges dropped, so degrees can be slightly below `d`).
pub fn random_regular(n: usize, d: usize, seed: u64) -> Graph {
    assert!(d < n, "random_regular: need d < n");
    let mut rng = rng_for(seed, 0x2E6);
    let mut stubs: Vec<VertexId> = Vec::with_capacity(n * d);
    for v in 0..n as VertexId {
        for _ in 0..d {
            stubs.push(v);
        }
    }
    stubs.shuffle(&mut rng);
    let mut edges = Vec::with_capacity(n * d / 2);
    for pair in stubs.chunks_exact(2) {
        if pair[0] != pair[1] {
            edges.push(Edge::unweighted(pair[0], pair[1]));
        }
    }
    Graph::new(n, edges)
}

/// Two `G(k, p_in)` clusters joined by exactly `bridge` random edges.
///
/// The planted minimum cut is (w.h.p.) the `bridge` edges; used by the
/// min-cut experiments (E10c).
pub fn planted_cut(k: usize, p_in: f64, bridge: usize, seed: u64) -> Graph {
    let n = 2 * k;
    let mut rng = rng_for(seed, 0x9D7);
    let mut edges = Vec::new();
    for side in 0..2u32 {
        let off = (side as usize * k) as VertexId;
        for u in 0..k as VertexId {
            for v in (u + 1)..k as VertexId {
                if rng.random_bool(p_in) {
                    edges.push(Edge::unweighted(off + u, off + v));
                }
            }
        }
    }
    let mut used = HashSet::new();
    while used.len() < bridge {
        let u = rng.random_range(0..k as VertexId);
        let v = rng.random_range(0..k as VertexId) + k as VertexId;
        if used.insert((u, v)) {
            edges.push(Edge::unweighted(u, v));
        }
    }
    Graph::new(n, edges)
}

/// Barbell: two cliques of size `k` joined by a path of length `bridge_len`.
pub fn barbell(k: usize, bridge_len: usize, seed: u64) -> Graph {
    let _ = seed;
    let n = 2 * k + bridge_len.saturating_sub(1);
    let mut edges = Vec::new();
    let clique = |off: usize, edges: &mut Vec<Edge>| {
        for u in 0..k {
            for v in (u + 1)..k {
                edges.push(Edge::unweighted(
                    (off + u) as VertexId,
                    (off + v) as VertexId,
                ));
            }
        }
    };
    clique(0, &mut edges);
    clique(k + bridge_len.saturating_sub(1), &mut edges);
    // Path from vertex k-1 through the bridge vertices to the second clique.
    let mut prev = (k - 1) as VertexId;
    for i in 0..bridge_len {
        let next = (k + i) as VertexId;
        edges.push(Edge::unweighted(prev, next));
        prev = next;
    }
    Graph::new(n, edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::connected_components;

    #[test]
    fn gnm_exact_edge_count_and_deterministic() {
        let g = gnm(50, 200, 1);
        assert_eq!(g.n(), 50);
        assert_eq!(g.m(), 200);
        assert_eq!(g, gnm(50, 200, 1));
        assert_ne!(g, gnm(50, 200, 2));
    }

    #[test]
    fn gnm_dense_path() {
        let g = gnm(10, 40, 3); // 40 > (45)/3, triggers shuffle path
        assert_eq!(g.m(), 40);
    }

    #[test]
    fn cycle_is_one_component_two_cycles_are_two() {
        let c1 = cycle(100, 5);
        let c2 = two_cycles(100, 5);
        assert_eq!(c1.m(), 100);
        assert_eq!(c2.m(), 100);
        assert_eq!(connected_components(&c1).count, 1);
        assert_eq!(connected_components(&c2).count, 2);
        assert!(c1.degrees().iter().all(|&d| d == 2));
        assert!(c2.degrees().iter().all(|&d| d == 2));
    }

    #[test]
    fn tree_generators_are_spanning() {
        let t = random_tree(200, 9);
        assert_eq!(t.m(), 199);
        assert_eq!(connected_components(&t).count, 1);
        let f = random_forest(100, 4, 9);
        assert_eq!(connected_components(&f).count, 4);
    }

    #[test]
    fn grid_and_complete_shapes() {
        let g = grid(3, 4);
        assert_eq!(g.n(), 12);
        assert_eq!(g.m(), 3 * 3 + 2 * 4); // horizontal + vertical
        assert_eq!(complete(6).m(), 15);
        assert_eq!(star(5).max_degree(), 4);
        assert_eq!(path(5).m(), 4);
    }

    #[test]
    fn chung_lu_is_skewed() {
        let g = chung_lu(300, 900, 2.5, 11);
        assert!(
            g.m() > 100,
            "expected a non-trivial edge count, got {}",
            g.m()
        );
        let degs = g.degrees();
        let max = *degs.iter().max().unwrap();
        let avg = g.average_degree();
        assert!(
            (max as f64) > 3.0 * avg,
            "power-law graph should have max degree ≫ average ({max} vs {avg})"
        );
    }

    #[test]
    fn regular_has_bounded_degree() {
        let g = random_regular(100, 6, 2);
        assert!(g.max_degree() <= 6);
        assert!(g.average_degree() > 4.0);
    }

    #[test]
    fn planted_cut_is_connected_with_bridges() {
        let g = planted_cut(30, 0.4, 3, 4);
        assert_eq!(connected_components(&g).count, 1);
    }

    #[test]
    fn barbell_shape() {
        let g = barbell(5, 3, 0);
        assert_eq!(connected_components(&g).count, 1);
        assert_eq!(g.n(), 12);
    }
}
