//! Sequential vertex-coloring algorithms and validators.

use crate::graph::Graph;
use crate::ids::VertexId;

/// A color in `0..=Δ` (the paper's (Δ+1)-coloring palette, Appendix C.5).
pub type Color = u32;

/// Whether `colors` (length `n`) is a proper coloring of `g`.
pub fn is_proper_coloring(g: &Graph, colors: &[Color]) -> bool {
    colors.len() == g.n()
        && g.edges()
            .iter()
            .all(|e| colors[e.u as usize] != colors[e.v as usize])
}

/// Number of distinct colors used.
pub fn color_count(colors: &[Color]) -> usize {
    let mut c: Vec<Color> = colors.to_vec();
    c.sort_unstable();
    c.dedup();
    c.len()
}

/// Greedy (Δ+1)-coloring: first free color, vertices in `order`
/// (or `0..n` when empty). Always succeeds with at most Δ+1 colors.
pub fn greedy_coloring(g: &Graph, order: &[VertexId]) -> Vec<Color> {
    let adj = g.adjacency();
    let default_order: Vec<VertexId>;
    let order = if order.is_empty() {
        default_order = (0..g.n() as VertexId).collect();
        &default_order
    } else {
        order
    };
    let mut colors: Vec<Option<Color>> = vec![None; g.n()];
    for &v in order {
        let mut taken: Vec<Color> = adj
            .neighbors(v)
            .iter()
            .filter_map(|&(u, _)| colors[u as usize])
            .collect();
        taken.sort_unstable();
        taken.dedup();
        let mut c = 0 as Color;
        for t in taken {
            if t == c {
                c += 1;
            } else if t > c {
                break;
            }
        }
        colors[v as usize] = Some(c);
    }
    colors
        .into_iter()
        .map(|c| c.expect("all vertices colored"))
        .collect()
}

/// Greedy *list*-coloring: each vertex must pick from its own palette.
/// Returns `None` if some vertex's palette is exhausted by its neighbors —
/// the failure case the ported coloring algorithm retries on (Appendix C.5).
pub fn greedy_list_coloring(
    g: &Graph,
    order: &[VertexId],
    palettes: &[Vec<Color>],
) -> Option<Vec<Color>> {
    assert_eq!(palettes.len(), g.n());
    let adj = g.adjacency();
    let mut colors: Vec<Option<Color>> = vec![None; g.n()];
    for &v in order {
        let neighbor_colors: std::collections::HashSet<Color> = adj
            .neighbors(v)
            .iter()
            .filter_map(|&(u, _)| colors[u as usize])
            .collect();
        let pick = palettes[v as usize]
            .iter()
            .copied()
            .find(|c| !neighbor_colors.contains(c))?;
        colors[v as usize] = Some(pick);
    }
    Some(
        colors
            .into_iter()
            .map(|c| c.expect("all vertices colored"))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn greedy_uses_at_most_delta_plus_one() {
        for seed in 0..6 {
            let g = generators::gnm(60, 200, seed);
            let colors = greedy_coloring(&g, &[]);
            assert!(is_proper_coloring(&g, &colors), "seed {seed}");
            assert!(color_count(&colors) <= g.max_degree() + 1, "seed {seed}");
        }
    }

    #[test]
    fn improper_is_detected() {
        let g = generators::path(3);
        assert!(!is_proper_coloring(&g, &[0, 0, 1]));
        assert!(is_proper_coloring(&g, &[0, 1, 0]));
    }

    #[test]
    fn list_coloring_respects_palettes() {
        let g = generators::path(3);
        let palettes = vec![vec![5], vec![6], vec![5]];
        let order: Vec<VertexId> = vec![0, 1, 2];
        let c = greedy_list_coloring(&g, &order, &palettes).unwrap();
        assert_eq!(c, vec![5, 6, 5]);
        assert!(is_proper_coloring(&g, &c));
    }

    #[test]
    fn list_coloring_fails_when_exhausted() {
        let g = generators::path(2);
        let palettes = vec![vec![1], vec![1]];
        assert!(greedy_list_coloring(&g, &[0, 1], &palettes).is_none());
    }

    #[test]
    fn bipartite_grid_gets_two_colors() {
        let g = generators::grid(4, 4);
        let colors = greedy_coloring(&g, &[]);
        assert!(is_proper_coloring(&g, &colors));
        assert!(color_count(&colors) <= 3); // greedy on a grid in row order: ≤3
    }
}
