//! Sharding an edge list across MPC machines.
//!
//! The paper's input convention (§2): edges start on the small machines,
//! distributed *arbitrarily*. These helpers produce the initial shard layout
//! consumed by `mpc-runtime`'s `ShardedVec`.

use crate::ids::Edge;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// How the input edges are laid out across the small machines initially.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Layout {
    /// Edge `i` goes to machine `i mod k` (balanced, adversarially striped).
    RoundRobin,
    /// Each edge goes to a uniformly random machine (seeded).
    Random(u64),
    /// Edges are split into `k` contiguous runs (worst case for locality:
    /// all edges of a vertex may sit on one machine).
    Contiguous,
}

/// Splits `edges` into `k` shards according to `layout`.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn shard_edges(edges: &[Edge], k: usize, layout: Layout) -> Vec<Vec<Edge>> {
    assert!(k > 0, "cannot shard across zero machines");
    let mut shards: Vec<Vec<Edge>> = vec![Vec::new(); k];
    match layout {
        Layout::RoundRobin => {
            for (i, &e) in edges.iter().enumerate() {
                shards[i % k].push(e);
            }
        }
        Layout::Random(seed) => {
            let mut rng = SmallRng::seed_from_u64(seed ^ 0x5EED);
            for &e in edges {
                shards[rng.random_range(0..k)].push(e);
            }
        }
        Layout::Contiguous => {
            let per = edges.len().div_ceil(k).max(1);
            for (i, &e) in edges.iter().enumerate() {
                shards[(i / per).min(k - 1)].push(e);
            }
        }
    }
    shards
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn all_layouts_preserve_edges() {
        let g = generators::gnm(40, 100, 1);
        for layout in [Layout::RoundRobin, Layout::Random(7), Layout::Contiguous] {
            let shards = shard_edges(g.edges(), 7, layout);
            assert_eq!(shards.len(), 7);
            let mut back: Vec<Edge> = shards.into_iter().flatten().collect();
            back.sort_by_key(|e| (e.u, e.v));
            assert_eq!(back.len(), 100);
            assert_eq!(back, g.edges());
        }
    }

    #[test]
    fn round_robin_is_balanced() {
        let g = generators::gnm(40, 100, 2);
        let shards = shard_edges(g.edges(), 8, Layout::RoundRobin);
        for s in &shards {
            assert!((12..=13).contains(&s.len()));
        }
    }

    #[test]
    #[should_panic]
    fn zero_machines_panics() {
        shard_edges(&[], 0, Layout::RoundRobin);
    }
}
