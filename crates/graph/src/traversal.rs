//! Sequential traversal algorithms: BFS, Dijkstra, connected components.
//!
//! These serve as correctness oracles for the distributed algorithms and as
//! the query machinery of the spanner/APSP experiments.

use crate::dsu::DisjointSets;
use crate::graph::{Adjacency, Graph};
use crate::ids::VertexId;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Distance value for unreachable vertices.
pub const UNREACHABLE: u64 = u64::MAX;

/// Unweighted single-source shortest-path distances (hop counts).
pub fn bfs(adj: &Adjacency, source: VertexId) -> Vec<u64> {
    let mut dist = vec![UNREACHABLE; adj.n()];
    let mut queue = std::collections::VecDeque::new();
    dist[source as usize] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        for &(v, _) in adj.neighbors(u) {
            if dist[v as usize] == UNREACHABLE {
                dist[v as usize] = du + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Weighted single-source shortest-path distances.
pub fn dijkstra(adj: &Adjacency, source: VertexId) -> Vec<u64> {
    let mut dist = vec![UNREACHABLE; adj.n()];
    let mut heap: BinaryHeap<Reverse<(u64, VertexId)>> = BinaryHeap::new();
    dist[source as usize] = 0;
    heap.push(Reverse((0, source)));
    while let Some(Reverse((d, u))) = heap.pop() {
        if d > dist[u as usize] {
            continue;
        }
        for &(v, w) in adj.neighbors(u) {
            let nd = d + w;
            if nd < dist[v as usize] {
                dist[v as usize] = nd;
                heap.push(Reverse((nd, v)));
            }
        }
    }
    dist
}

/// Result of a connected-components computation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Components {
    /// For each vertex, the smallest vertex id in its component.
    pub label: Vec<VertexId>,
    /// Number of connected components.
    pub count: usize,
}

impl Components {
    /// Whether `u` and `v` lie in the same component.
    pub fn same(&self, u: VertexId, v: VertexId) -> bool {
        self.label[u as usize] == self.label[v as usize]
    }
}

/// Connected components via union–find, labeled by minimum vertex id.
pub fn connected_components(g: &Graph) -> Components {
    let mut dsu = DisjointSets::new(g.n());
    for e in g.edges() {
        dsu.union(e.u, e.v);
    }
    components_from_dsu(&mut dsu)
}

/// Extracts min-id component labels from a populated union-find structure.
pub fn components_from_dsu(dsu: &mut DisjointSets) -> Components {
    let n = dsu.len();
    let mut min_id = vec![VertexId::MAX; n];
    for v in 0..n as VertexId {
        let r = dsu.find(v) as usize;
        min_id[r] = min_id[r].min(v);
    }
    let label: Vec<VertexId> = (0..n as VertexId)
        .map(|v| min_id[dsu.find(v) as usize])
        .collect();
    Components {
        count: dsu.component_count(),
        label,
    }
}

/// Weighted eccentricity-based diameter estimate (max over BFS from sample).
///
/// Exact for `sample >= n`; otherwise a lower bound. Hop-count based.
pub fn diameter_lower_bound(g: &Graph, sample: usize, seed: u64) -> u64 {
    use rand::{Rng, SeedableRng};
    let adj = g.adjacency();
    let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
    let mut best = 0;
    let n = g.n();
    if n == 0 {
        return 0;
    }
    for i in 0..sample.max(1) {
        let s = if sample >= n {
            (i % n) as VertexId
        } else {
            rng.random_range(0..n as VertexId)
        };
        let ecc = bfs(&adj, s)
            .into_iter()
            .filter(|&d| d != UNREACHABLE)
            .max()
            .unwrap_or(0);
        best = best.max(ecc);
        if sample >= n && i + 1 == n {
            break;
        }
    }
    best
}

/// All-pairs shortest paths by repeated Dijkstra. `O(n·m log n)`;
/// reference oracle for the APSP approximation experiment on small graphs.
pub fn apsp_exact(g: &Graph) -> Vec<Vec<u64>> {
    let adj = g.adjacency();
    (0..g.n() as VertexId).map(|s| dijkstra(&adj, s)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::ids::Edge;

    #[test]
    fn bfs_on_path() {
        let g = generators::path(5);
        let d = bfs(&g.adjacency(), 0);
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn dijkstra_prefers_light_detour() {
        // 0-1 heavy direct edge, 0-2-1 light detour.
        let g = Graph::new(
            3,
            [Edge::new(0, 1, 10), Edge::new(0, 2, 1), Edge::new(2, 1, 2)],
        );
        let d = dijkstra(&g.adjacency(), 0);
        assert_eq!(d[1], 3);
    }

    #[test]
    fn components_on_forest() {
        let f = generators::random_forest(60, 3, 1);
        let c = connected_components(&f);
        assert_eq!(c.count, 3);
        assert!(c.same(0, 1) || !c.same(0, 59)); // labels are consistent
                                                 // Labels are minimum ids: the label of vertex 0 is 0.
        assert_eq!(c.label[0], 0);
    }

    #[test]
    fn unreachable_is_flagged() {
        let g = Graph::new(3, [Edge::unweighted(0, 1)]);
        let d = bfs(&g.adjacency(), 0);
        assert_eq!(d[2], UNREACHABLE);
    }

    #[test]
    fn diameter_of_path() {
        let g = generators::path(10);
        assert_eq!(diameter_lower_bound(&g, 10, 0), 9);
    }

    #[test]
    fn apsp_matches_single_source() {
        let g = generators::gnm(30, 60, 3).with_random_weights(50, 3);
        let all = apsp_exact(&g);
        let d0 = dijkstra(&g.adjacency(), 0);
        assert_eq!(all[0], d0);
    }
}
