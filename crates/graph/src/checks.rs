//! Structural validators: spanners, spanning forests.
//!
//! These are the acceptance criteria of the spanner experiments (E4, E5, E9):
//! a claimed `t`-spanner is *verified*, not assumed.

use crate::graph::Graph;
use crate::ids::VertexId;
use crate::traversal::{bfs, dijkstra, UNREACHABLE};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Outcome of a spanner verification.
#[derive(Clone, Debug, PartialEq)]
pub struct SpannerReport {
    /// Worst stretch observed over the checked pairs (1.0 for identical
    /// distances). `f64::INFINITY` if some connected pair became disconnected.
    pub max_stretch: f64,
    /// Number of vertex pairs checked.
    pub pairs_checked: usize,
    /// Spanner edge count.
    pub spanner_edges: usize,
}

impl SpannerReport {
    /// Whether every checked pair had stretch at most `t`.
    pub fn within(&self, t: f64) -> bool {
        self.max_stretch <= t + 1e-9
    }
}

/// Verifies that `h` is a subgraph of `g` and measures its stretch.
///
/// For `sources = None` all vertices are used as BFS/Dijkstra sources (exact
/// verification, `O(n·m)`); otherwise `k` random sources are sampled — every
/// pair `(source, v)` is still checked exactly for those sources.
///
/// Distances are weighted iff the graph has any weight ≠ 1.
///
/// # Panics
///
/// Panics if `h` contains an edge absent from `g` (not a subgraph) — a
/// spanner must be a subgraph (§4).
pub fn verify_spanner(g: &Graph, h: &Graph, sources: Option<usize>, seed: u64) -> SpannerReport {
    use std::collections::HashSet;
    let g_set: HashSet<(VertexId, VertexId)> = g.edges().iter().map(|e| (e.u, e.v)).collect();
    for e in h.edges() {
        assert!(
            g_set.contains(&(e.u, e.v)),
            "spanner edge {e:?} does not appear in the base graph"
        );
    }
    let weighted = g.edges().iter().any(|e| e.w != 1);
    let adj_g = g.adjacency();
    let adj_h = h.adjacency();
    let n = g.n();
    let source_list: Vec<VertexId> = match sources {
        None => (0..n as VertexId).collect(),
        Some(k) => {
            let mut rng = SmallRng::seed_from_u64(seed);
            (0..k.min(n))
                .map(|_| rng.random_range(0..n as VertexId))
                .collect()
        }
    };
    let mut max_stretch: f64 = 1.0;
    let mut pairs = 0usize;
    for &s in &source_list {
        let (dg, dh) = if weighted {
            (dijkstra(&adj_g, s), dijkstra(&adj_h, s))
        } else {
            (bfs(&adj_g, s), bfs(&adj_h, s))
        };
        for v in 0..n {
            if v as VertexId == s || dg[v] == UNREACHABLE {
                continue;
            }
            pairs += 1;
            if dh[v] == UNREACHABLE {
                max_stretch = f64::INFINITY;
            } else {
                debug_assert!(dh[v] >= dg[v], "subgraph distances cannot shrink");
                max_stretch = max_stretch.max(dh[v] as f64 / dg[v] as f64);
            }
        }
    }
    SpannerReport {
        max_stretch,
        pairs_checked: pairs,
        spanner_edges: h.m(),
    }
}

/// Whether `forest_edges` form a spanning forest of `g`:
/// acyclic, subgraph of `g`, and connecting exactly `g`'s components.
pub fn is_spanning_forest(g: &Graph, forest_edges: &[crate::ids::Edge]) -> bool {
    use std::collections::HashSet;
    let g_set: HashSet<(VertexId, VertexId)> = g.edges().iter().map(|e| (e.u, e.v)).collect();
    let mut dsu = crate::dsu::DisjointSets::new(g.n());
    for e in forest_edges {
        let ne = e.normalized();
        if !g_set.contains(&(ne.u, ne.v)) {
            return false; // not a subgraph
        }
        if !dsu.union(ne.u, ne.v) {
            return false; // cycle
        }
    }
    let g_components = crate::traversal::connected_components(g).count;
    dsu.component_count() == g_components
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::ids::Edge;
    use crate::mst::kruskal;

    #[test]
    fn graph_is_a_1_spanner_of_itself() {
        let g = generators::gnm(40, 120, 1);
        let r = verify_spanner(&g, &g, None, 0);
        assert_eq!(r.max_stretch, 1.0);
        assert!(r.within(1.0));
    }

    #[test]
    fn spanning_tree_of_cycle_has_stretch_n_minus_1() {
        let n = 10;
        let g = generators::cycle(n, 0);
        let t = Graph::new(n, kruskal(&g).edges.clone());
        let r = verify_spanner(&g, &t, None, 0);
        assert!((r.max_stretch - (n as f64 - 1.0)).abs() < 1e-9);
    }

    #[test]
    fn missing_connectivity_is_infinite_stretch() {
        let g = generators::path(3);
        let h = Graph::new(3, [Edge::unweighted(0, 1)]);
        let r = verify_spanner(&g, &h, None, 0);
        assert!(r.max_stretch.is_infinite());
    }

    #[test]
    #[should_panic]
    fn non_subgraph_panics() {
        let g = generators::path(3);
        let h = Graph::new(3, [Edge::unweighted(0, 2)]);
        verify_spanner(&g, &h, None, 0);
    }

    #[test]
    fn spanning_forest_checks() {
        let g = generators::gnm(30, 90, 2);
        let f = kruskal(&g);
        assert!(is_spanning_forest(&g, &f.edges));
        // Dropping an edge breaks the component count.
        assert!(!is_spanning_forest(&g, &f.edges[..f.edges.len() - 1]));
        // A cycle is not a forest.
        let c = generators::cycle(5, 1);
        let all: Vec<Edge> = c.edges().to_vec();
        assert!(!is_spanning_forest(&c, &all));
    }

    #[test]
    fn sampled_sources_subsample_pairs() {
        let g = generators::gnm(50, 150, 3);
        let full = verify_spanner(&g, &g, None, 0);
        let sampled = verify_spanner(&g, &g, Some(5), 0);
        assert!(sampled.pairs_checked < full.pairs_checked);
    }
}
