//! Sequential maximal-independent-set algorithms and validators.

use crate::graph::Graph;
use crate::ids::VertexId;

/// Whether `set` is an independent set of `g`.
pub fn is_independent_set(g: &Graph, set: &[VertexId]) -> bool {
    let mut in_set = vec![false; g.n()];
    for &v in set {
        if v as usize >= g.n() || in_set[v as usize] {
            return false; // out of range or duplicated
        }
        in_set[v as usize] = true;
    }
    g.edges()
        .iter()
        .all(|e| !(in_set[e.u as usize] && in_set[e.v as usize]))
}

/// Whether `set` is a *maximal* independent set: independent, and every
/// vertex outside the set has a neighbor inside it.
pub fn is_maximal_independent_set(g: &Graph, set: &[VertexId]) -> bool {
    if !is_independent_set(g, set) {
        return false;
    }
    let mut in_set = vec![false; g.n()];
    for &v in set {
        in_set[v as usize] = true;
    }
    let mut dominated = in_set.clone();
    for e in g.edges() {
        if in_set[e.u as usize] {
            dominated[e.v as usize] = true;
        }
        if in_set[e.v as usize] {
            dominated[e.u as usize] = true;
        }
    }
    dominated.iter().all(|&d| d)
}

/// Greedy MIS processing vertices in the order given by `order`
/// (or `0..n` if `order` is empty). This is the sequential process the
/// large machine simulates in the ported MIS algorithm (Appendix C.4).
pub fn greedy_mis(g: &Graph, order: &[VertexId]) -> Vec<VertexId> {
    let adj = g.adjacency();
    let default_order: Vec<VertexId>;
    let order = if order.is_empty() {
        default_order = (0..g.n() as VertexId).collect();
        &default_order
    } else {
        order
    };
    let mut blocked = vec![false; g.n()];
    let mut mis = Vec::new();
    for &v in order {
        if !blocked[v as usize] {
            mis.push(v);
            blocked[v as usize] = true;
            for &(u, _) in adj.neighbors(v) {
                blocked[u as usize] = true;
            }
        }
    }
    mis
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn greedy_mis_is_maximal() {
        for seed in 0..6 {
            let g = generators::gnm(70, 250, seed);
            let mis = greedy_mis(&g, &[]);
            assert!(is_maximal_independent_set(&g, &mis), "seed {seed}");
        }
    }

    #[test]
    fn respects_order() {
        let g = generators::star(5);
        // Center first: MIS = {0}.
        let a = greedy_mis(&g, &[0, 1, 2, 3, 4]);
        assert_eq!(a, vec![0]);
        // Leaves first: MIS = all leaves.
        let b = greedy_mis(&g, &[1, 2, 3, 4, 0]);
        assert_eq!(b, vec![1, 2, 3, 4]);
    }

    #[test]
    fn rejects_dependent_or_non_maximal() {
        let g = generators::path(3); // 0-1-2
        assert!(!is_independent_set(&g, &[0, 1]));
        assert!(is_independent_set(&g, &[0, 2]));
        assert!(!is_maximal_independent_set(&g, &[0])); // 2 not dominated
        assert!(is_maximal_independent_set(&g, &[1]));
        assert!(!is_independent_set(&g, &[0, 0])); // duplicate
    }

    #[test]
    fn empty_graph_mis_is_all_vertices() {
        let g = Graph::empty(4);
        let mis = greedy_mis(&g, &[]);
        assert_eq!(mis.len(), 4);
        assert!(is_maximal_independent_set(&g, &mis));
    }
}
