//! Sequential sketch-Borůvka: connectivity from vertex sketches alone.
//!
//! This is the computation the *large machine* performs in the ported
//! connectivity algorithm (paper Theorem C.1): given one `L0` sketch per
//! vertex per phase, repeatedly sample an outgoing edge of every current
//! component (by summing member sketches — linearity!) and contract. After
//! `O(log n)` phases the components are exactly the connected components,
//! w.h.p. The graph itself is never consulted.

use crate::l0::{SketchFamily, VertexSketch};
use mpc_graph::{traversal::Components, DisjointSets};

/// Runs sketch-Borůvka over `sketches[phase][v]`.
///
/// Returns min-id-labeled components. With `phases ≈ 2·log₂ n` the result
/// equals the true components w.h.p.; fewer phases can leave components
/// under-merged (never over-merged — decoded edges are fingerprint-verified
/// real edges).
///
/// # Panics
///
/// Panics if `sketches` is empty or its rows disagree on `n`.
pub fn sketch_connectivity(
    family: &SketchFamily,
    sketches: &[Vec<VertexSketch>],
    n: usize,
) -> Components {
    assert!(!sketches.is_empty(), "need at least one phase of sketches");
    for row in sketches {
        assert_eq!(row.len(), n, "one sketch per vertex per phase");
    }
    let mut dsu = DisjointSets::new(n);
    for (phase, row) in sketches.iter().enumerate() {
        // Sum this phase's fresh sketches per current component.
        let mut component_sketch: std::collections::BTreeMap<u32, VertexSketch> =
            std::collections::BTreeMap::new();
        for v in 0..n as u32 {
            let root = dsu.find(v);
            component_sketch
                .entry(root)
                .and_modify(|s| s.merge(&row[v as usize]))
                .or_insert_with(|| row[v as usize].clone());
        }
        if component_sketch.len() <= 1 {
            break;
        }
        let mut merged_any = false;
        for (_root, sketch) in component_sketch {
            if let Some((u, v)) = family.decode_phase(&sketch, phase) {
                // Fingerprint-verified: (u, v) is a real edge leaving the
                // component, so the union is always safe.
                merged_any |= dsu.union(u, v);
            }
        }
        if !merged_any {
            // All components decoded nothing: either done or out of luck
            // this phase; later phases retry with fresh randomness.
            continue;
        }
    }
    mpc_graph::traversal::components_from_dsu(&mut dsu)
}

/// Builds per-phase vertex sketches of a whole graph sequentially
/// (testing / single-machine use; the distributed path builds partial
/// sketches per machine and merges them with aggregation).
pub fn sketch_graph(
    family: &SketchFamily,
    n: usize,
    edges: impl IntoIterator<Item = (u32, u32)> + Clone,
) -> Vec<Vec<VertexSketch>> {
    (0..family.phases())
        .map(|phase| {
            let mut row: Vec<VertexSketch> = (0..n).map(|_| family.empty(phase)).collect();
            for (u, v) in edges.clone() {
                family.add_edge_phase(&mut row[u as usize], phase, u, v);
                family.add_edge_phase(&mut row[v as usize], phase, v, u);
            }
            row
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_graph::{generators, traversal::connected_components};

    fn phases_for(n: usize) -> usize {
        2 * ((n.max(2) as f64).log2().ceil() as usize) + 2
    }

    fn check_graph(g: &mpc_graph::Graph, seed: u64) {
        let n = g.n();
        let fam = SketchFamily::new(n, phases_for(n), seed);
        let sketches = sketch_graph(
            &fam,
            n,
            g.edges().iter().map(|e| (e.u, e.v)).collect::<Vec<_>>(),
        );
        let got = sketch_connectivity(&fam, &sketches, n);
        let want = connected_components(g);
        assert_eq!(got, want);
    }

    #[test]
    fn identifies_components_of_random_graphs() {
        for seed in 0..5 {
            let g = generators::gnm(60, 90, seed);
            check_graph(&g, seed);
        }
    }

    #[test]
    fn distinguishes_one_vs_two_cycles() {
        let one = generators::cycle(64, 3);
        let two = generators::two_cycles(64, 3);
        check_graph(&one, 11);
        check_graph(&two, 11);
    }

    #[test]
    fn handles_forests_and_isolated_vertices() {
        let f = generators::random_forest(50, 5, 2);
        check_graph(&f, 7);
        let empty = mpc_graph::Graph::empty(10);
        check_graph(&empty, 1);
    }

    #[test]
    fn merged_sketches_never_produce_fake_edges() {
        // Even with too few phases, unions only happen on real edges, so the
        // partition is always a refinement coarsening consistent with G.
        let g = generators::gnm(80, 120, 9);
        let fam = SketchFamily::new(80, 2, 13); // deliberately few phases
        let sketches = sketch_graph(
            &fam,
            80,
            g.edges().iter().map(|e| (e.u, e.v)).collect::<Vec<_>>(),
        );
        let got = sketch_connectivity(&fam, &sketches, 80);
        let want = connected_components(&g);
        // Every merged pair must be truly connected.
        for u in 0..80u32 {
            for v in 0..80u32 {
                if got.same(u, v) {
                    assert!(want.same(u, v), "sketch over-merged {u},{v}");
                }
            }
        }
    }
}
