//! ℓ0-sampling sketches over graph incidence vectors \[36\], specialized to
//! the AGM edge-sampling use (Appendix C.1 of the paper).

use crate::hashing::KWiseHash;
use crate::onesparse::{OneSparse, OneSparseDecode};
use mpc_graph::VertexId;
use mpc_runtime::Payload;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Buckets per level (two independent one-sparse cells per subsampling
/// level; a level decodes if any cell isolates a single item).
const BUCKETS: usize = 3;

/// A single ℓ0-sampler: `levels × BUCKETS` one-sparse cells.
///
/// Level `ℓ` retains indices subsampled with probability `2^{−ℓ}`; whatever
/// level happens to isolate one nonzero index decodes it. Linearity is
/// inherited from [`OneSparse`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct L0Sampler {
    cells: Vec<OneSparse>, // levels * BUCKETS, row-major by level
    levels: usize,
}

impl L0Sampler {
    fn new(levels: usize) -> Self {
        L0Sampler {
            cells: vec![OneSparse::new(); levels * BUCKETS],
            levels,
        }
    }

    fn update(&mut self, index: u64, delta: i64, hashes: &LevelHashes) {
        let lvl = hashes.level.level(index, self.levels - 1);
        // The item lives at levels 0..=lvl (geometric subsampling).
        for l in 0..=lvl {
            let b = (hashes.bucket.eval(index ^ (l as u64) << 48) % BUCKETS as u64) as usize;
            self.cells[l * BUCKETS + b].update(index, delta, hashes.z);
        }
    }

    /// Merges a sketch from the same family.
    ///
    /// The cell arrays always have identical lengths within a family, so
    /// the merge runs as one batched pass over the word-level cell slices
    /// (see [`OneSparse::merge_slices`]) — this is the inner loop of the
    /// connectivity program's owner-merge round.
    pub fn merge(&mut self, other: &L0Sampler) {
        debug_assert_eq!(self.levels, other.levels);
        OneSparse::merge_slices(&mut self.cells, &other.cells);
    }

    fn decode(&self, z: u64) -> Option<u64> {
        // Prefer sparse (high) levels where isolation is likely.
        for l in (0..self.levels).rev() {
            for b in 0..BUCKETS {
                if let OneSparseDecode::One(idx, _) = self.cells[l * BUCKETS + b].decode(z) {
                    return Some(idx);
                }
            }
        }
        None
    }

    /// Whether every cell is zero (no nonzero coordinates survive).
    pub fn is_zero(&self) -> bool {
        self.cells.iter().all(OneSparse::is_zero)
    }
}

impl Payload for L0Sampler {
    fn words(&self) -> usize {
        3 * self.cells.len()
    }
}

#[derive(Clone, Debug)]
struct LevelHashes {
    level: KWiseHash,
    bucket: KWiseHash,
    z: u64,
}

/// A family of vertex sketches with shared hash functions.
///
/// One machine draws the seeds (`O(polylog n)` bits) and disseminates them;
/// every machine then builds identical-family sketches from its local edges
/// (Property 1 / Theorem C.1 in the paper). `phases` independent copies are
/// drawn so the sketch-Borůvka loop can consume fresh randomness each phase.
#[derive(Clone, Debug)]
pub struct SketchFamily {
    n: u64,
    levels: usize,
    hashes: Vec<LevelHashes>,
}

/// A vertex's sketch for one phase. See [`SketchFamily`].
pub type VertexSketch = L0Sampler;

impl SketchFamily {
    /// Creates a family for graphs on `n` vertices with `phases` independent
    /// copies, deterministically from `seed`.
    pub fn new(n: usize, phases: usize, seed: u64) -> Self {
        let n = n as u64;
        let domain_bits = (2.0 * (n.max(2) as f64).log2()).ceil() as usize + 2;
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xA6A6_5EED);
        let independence = ((n.max(2) as f64).log2().ceil() as usize + 2).max(4);
        let hashes = (0..phases)
            .map(|_| LevelHashes {
                level: KWiseHash::new(independence, rng.random()),
                bucket: KWiseHash::new(independence, rng.random()),
                z: rng.random_range(1..crate::field::P),
            })
            .collect();
        SketchFamily {
            n,
            levels: domain_bits,
            hashes,
        }
    }

    /// Number of independent phases.
    pub fn phases(&self) -> usize {
        self.hashes.len()
    }

    /// A fresh, empty sketch for `phase`.
    pub fn empty(&self, phase: usize) -> VertexSketch {
        let _ = &self.hashes[phase];
        L0Sampler::new(self.levels)
    }

    /// Edge-slot index of the ordered pair; both orientations map to the
    /// same slot, with opposite signs chosen by orientation.
    fn edge_slot(&self, u: VertexId, v: VertexId) -> (u64, i64) {
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        let slot = a as u64 * self.n + b as u64;
        let sign = if u < v { 1 } else { -1 };
        (slot, sign)
    }

    /// Records edge `{u, v}` in `u`'s sketch for the sketch's phase.
    ///
    /// Call once per endpoint: `add_edge(s_u, u, v)` and `add_edge(s_v, v, u)`.
    /// The ±1 orientation means the two contributions cancel when the
    /// sketches of `u` and `v` are merged — the AGM trick that makes merged
    /// sketches see only *outgoing* edges.
    ///
    /// The phase is implicit: pass the phase's hash via `phase`.
    pub fn add_edge_phase(
        &self,
        sketch: &mut VertexSketch,
        phase: usize,
        u: VertexId,
        v: VertexId,
    ) {
        let (slot, sign) = self.edge_slot(u, v);
        sketch.update(slot, sign, &self.hashes[phase]);
    }

    /// [`add_edge_phase`](Self::add_edge_phase) for phase 0 (convenience).
    pub fn add_edge(&self, sketch: &mut VertexSketch, u: VertexId, v: VertexId) {
        self.add_edge_phase(sketch, 0, u, v);
    }

    /// Decodes one surviving edge from a (merged) sketch of `phase`.
    pub fn decode_phase(
        &self,
        sketch: &VertexSketch,
        phase: usize,
    ) -> Option<(VertexId, VertexId)> {
        let slot = sketch.decode(self.hashes[phase].z)?;
        let u = (slot / self.n) as VertexId;
        let v = (slot % self.n) as VertexId;
        Some((u, v))
    }

    /// [`decode_phase`](Self::decode_phase) for phase 0 (convenience).
    pub fn decode(&self, sketch: &VertexSketch) -> Option<(VertexId, VertexId)> {
        self.decode_phase(sketch, 0)
    }

    /// Words per vertex sketch (for memory accounting).
    pub fn sketch_words(&self) -> usize {
        3 * BUCKETS * self.levels
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_edge_decodes() {
        let fam = SketchFamily::new(10, 1, 1);
        let mut s = fam.empty(0);
        fam.add_edge(&mut s, 3, 7);
        assert_eq!(fam.decode(&s), Some((3, 7)));
    }

    #[test]
    fn internal_edges_cancel() {
        let fam = SketchFamily::new(10, 1, 2);
        let mut su = fam.empty(0);
        let mut sv = fam.empty(0);
        fam.add_edge(&mut su, 2, 5);
        fam.add_edge(&mut sv, 5, 2);
        su.merge(&sv);
        assert!(su.is_zero());
        assert_eq!(fam.decode(&su), None);
    }

    #[test]
    fn decodes_an_outgoing_edge_from_dense_neighborhoods() {
        // Vertex 0 with 100 incident edges: decode must return one of them.
        let fam = SketchFamily::new(200, 1, 3);
        let mut s = fam.empty(0);
        for v in 1..=100 {
            fam.add_edge(&mut s, 0, v);
        }
        let (u, v) = fam.decode(&s).expect("should isolate some edge");
        assert_eq!(u, 0);
        assert!((1..=100).contains(&v));
    }

    #[test]
    fn decode_success_rate_is_high() {
        // Across many random multi-edge sketches, decoding succeeds almost
        // always (constant success per level, ~log n levels, 2 buckets).
        let fam = SketchFamily::new(300, 1, 9);
        let mut ok = 0;
        let trials = 200;
        let mut rng = SmallRng::seed_from_u64(4);
        for _ in 0..trials {
            let mut s = fam.empty(0);
            let deg = rng.random_range(1..80);
            for _ in 0..deg {
                let v = rng.random_range(1..300) as VertexId;
                fam.add_edge(&mut s, 0, v.max(1));
            }
            if fam.decode(&s).is_some() {
                ok += 1;
            }
        }
        assert!(
            ok * 100 >= trials * 90,
            "decode succeeded only {ok}/{trials}"
        );
    }

    #[test]
    fn phases_are_independent() {
        let fam = SketchFamily::new(50, 2, 5);
        let mut a = fam.empty(0);
        let mut b = fam.empty(1);
        fam.add_edge_phase(&mut a, 0, 1, 2);
        fam.add_edge_phase(&mut b, 1, 1, 2);
        assert_ne!(a, b, "different phases hash differently (w.o.p.)");
        assert_eq!(fam.decode_phase(&a, 0), Some((1, 2)));
        assert_eq!(fam.decode_phase(&b, 1), Some((1, 2)));
    }

    #[test]
    fn sketch_words_are_polylog() {
        let fam = SketchFamily::new(4096, 1, 0);
        // 3 buckets * (2*12+2) levels * 3 words.
        assert!(
            fam.sketch_words() <= 3 * 3 * 30,
            "words = {}",
            fam.sketch_words()
        );
        assert_eq!(fam.empty(0).words(), fam.sketch_words());
    }

    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
}

/// A sparse ℓ0-sampler: only nonzero cells are materialized.
///
/// Small machines build *partial* sketches from a handful of local edges, so
/// almost all of the `levels × BUCKETS` cells are zero; shipping and storing
/// them sparsely keeps the per-machine footprint proportional to the local
/// edge count (times `O(log n)`) instead of the dense sketch size. Linear:
/// merging sparse sketches adds cells pointwise. Convert to a dense
/// [`L0Sampler`] with [`SketchFamily::to_dense`] for decoding.
///
/// Cells live in one contiguous vector sorted by cell index (canonical: no
/// zero cells), so [`merge`](SparseSketch::merge) — the inner loop of the
/// connectivity owner-merge round — is a linear two-pointer join over flat
/// memory instead of per-cell tree-map lookups.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct SparseSketch {
    /// `(cell index, cell)`, strictly ascending by index, no zero cells.
    cells: Vec<(u32, OneSparse)>,
}

impl SparseSketch {
    /// An empty sparse sketch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Merges another sparse sketch (linearity); zero cells are dropped so
    /// cancellation keeps the representation minimal.
    ///
    /// Both operands are sorted, so this is a batched merge-join: `O(a + b)`
    /// cell operations over contiguous memory.
    pub fn merge(&mut self, other: &SparseSketch) {
        if other.cells.is_empty() {
            return;
        }
        if self.cells.is_empty() {
            self.cells = other.cells.clone();
            return;
        }
        let mut out = Vec::with_capacity(self.cells.len() + other.cells.len());
        let (a, b) = (&self.cells, &other.cells);
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].0.cmp(&b[j].0) {
                std::cmp::Ordering::Less => {
                    out.push(a[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(b[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    let mut cell = a[i].1;
                    cell.merge(&b[j].1);
                    if !cell.is_zero() {
                        out.push((a[i].0, cell));
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&a[i..]);
        out.extend_from_slice(&b[j..]);
        self.cells = out;
    }

    /// Number of nonzero cells.
    pub fn nnz(&self) -> usize {
        self.cells.len()
    }
}

impl mpc_runtime::Payload for SparseSketch {
    fn words(&self) -> usize {
        // 1 index word + 3 payload words per nonzero cell.
        4 * self.cells.len()
    }
}

impl SketchFamily {
    /// Records edge `{u, v}` in a sparse sketch of `u` for `phase`
    /// (the sparse counterpart of [`add_edge_phase`](Self::add_edge_phase)).
    pub fn add_edge_sparse(
        &self,
        sketch: &mut SparseSketch,
        phase: usize,
        u: VertexId,
        v: VertexId,
    ) {
        let (slot, sign) = self.edge_slot(u, v);
        let hashes = &self.hashes[phase];
        let lvl = hashes.level.level(slot, self.levels - 1);
        for l in 0..=lvl {
            let b = (hashes.bucket.eval(slot ^ (l as u64) << 48) % BUCKETS as u64) as usize;
            let idx = (l * BUCKETS + b) as u32;
            match sketch.cells.binary_search_by_key(&idx, |c| c.0) {
                Ok(pos) => {
                    let cell = &mut sketch.cells[pos].1;
                    cell.update(slot, sign, hashes.z);
                    if cell.is_zero() {
                        sketch.cells.remove(pos);
                    }
                }
                Err(pos) => {
                    let mut cell = OneSparse::new();
                    cell.update(slot, sign, hashes.z);
                    sketch.cells.insert(pos, (idx, cell));
                }
            }
        }
    }

    /// Expands a sparse sketch into the dense form for decoding.
    pub fn to_dense(&self, sparse: &SparseSketch) -> L0Sampler {
        let mut dense = L0Sampler::new(self.levels);
        for (idx, cell) in &sparse.cells {
            dense.cells[*idx as usize].merge(cell);
        }
        dense
    }
}

#[cfg(test)]
mod sparse_tests {
    use super::*;

    #[test]
    fn sparse_matches_dense() {
        let fam = SketchFamily::new(60, 1, 3);
        let mut dense = fam.empty(0);
        let mut sparse = SparseSketch::new();
        for v in 1..20 {
            fam.add_edge(&mut dense, 0, v);
            fam.add_edge_sparse(&mut sparse, 0, 0, v);
        }
        assert_eq!(fam.to_dense(&sparse), dense);
    }

    #[test]
    fn sparse_merge_cancels() {
        let fam = SketchFamily::new(30, 1, 5);
        let mut a = SparseSketch::new();
        let mut b = SparseSketch::new();
        fam.add_edge_sparse(&mut a, 0, 2, 7);
        fam.add_edge_sparse(&mut b, 0, 7, 2);
        a.merge(&b);
        assert_eq!(a.nnz(), 0);
        assert!(fam.decode(&fam.to_dense(&a)).is_none());
    }

    #[test]
    fn sparse_words_track_nnz() {
        use mpc_runtime::Payload;
        let fam = SketchFamily::new(100, 1, 1);
        let mut s = SparseSketch::new();
        assert_eq!(s.words(), 0);
        fam.add_edge_sparse(&mut s, 0, 1, 2);
        assert!(s.words() >= 4);
        assert_eq!(s.words(), 4 * s.nnz());
    }
}
