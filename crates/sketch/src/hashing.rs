//! `k`-wise independent polynomial hashing over `F_p`.
//!
//! The paper replaces the shared randomness assumed by \[36\] with
//! `O(log n)`-wise independence (proof of Theorem C.1): one machine draws
//! the polynomial coefficients (`O(polylog n)` bits) and disseminates them.
//! A degree-`(k−1)` polynomial with uniform coefficients is exactly
//! `k`-wise independent over `F_p`.

use crate::field;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A `k`-wise independent hash function `F_p → F_p`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KWiseHash {
    coeffs: Vec<u64>,
}

impl KWiseHash {
    /// Draws a fresh degree-`(k−1)` polynomial from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize, seed: u64) -> Self {
        assert!(k > 0, "independence parameter must be positive");
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x5EED_CAFE_F00D_u64);
        let coeffs = (0..k).map(|_| rng.random_range(0..field::P)).collect();
        KWiseHash { coeffs }
    }

    /// Evaluates the hash at `x` (Horner's rule).
    pub fn eval(&self, x: u64) -> u64 {
        let x = x % field::P;
        let mut acc = 0u64;
        for &c in &self.coeffs {
            acc = field::add(field::mul(acc, x), c);
        }
        acc
    }

    /// Number of trailing zero bits of `eval(x)` — the geometric "level" of
    /// `x` used by the ℓ0-sampler (level `ℓ` keeps items whose hash has at
    /// least `ℓ` trailing zeros, i.e. a `2^{−ℓ}` subsample).
    pub fn level(&self, x: u64, max_level: usize) -> usize {
        let h = self.eval(x);
        (h.trailing_zeros() as usize).min(max_level)
    }

    /// The number of coefficients (= the independence parameter `k`).
    pub fn independence(&self) -> usize {
        self.coeffs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let a = KWiseHash::new(8, 7);
        let b = KWiseHash::new(8, 7);
        let c = KWiseHash::new(8, 8);
        assert_eq!(a.eval(12345), b.eval(12345));
        assert_ne!(a.eval(12345), c.eval(12345)); // overwhelmingly likely
    }

    #[test]
    fn levels_are_geometric() {
        let h = KWiseHash::new(16, 3);
        let mut counts = [0usize; 20];
        let n = 40_000u64;
        for x in 0..n {
            counts[h.level(x, 19)] += 1;
        }
        // Level 0 holds about half the items; level 3 about 1/16.
        assert!((counts[0] as f64 / n as f64 - 0.5).abs() < 0.02);
        let l3 = counts[3] as f64 / n as f64;
        assert!((l3 - 0.0625).abs() < 0.01, "level-3 fraction {l3}");
    }

    #[test]
    fn evaluation_spreads_values() {
        let h = KWiseHash::new(8, 11);
        let mut seen = std::collections::HashSet::new();
        for x in 0..1000 {
            seen.insert(h.eval(x));
        }
        assert_eq!(
            seen.len(),
            1000,
            "collisions in 1000 evals are astronomically unlikely"
        );
    }
}
