//! One-sparse recovery: the building block of the ℓ0-sampler \[36\].
//!
//! A one-sparse sketch summarizes a signed multiset of indices with three
//! field elements: the total count, the index-weighted count, and a
//! polynomial fingerprint `Σ δᵢ·z^{iᵢ}`. If the underlying vector has
//! exactly one nonzero coordinate, the sketch recovers it exactly; the
//! fingerprint rejects non-one-sparse vectors with probability
//! `1 − O(domain/P)`.

use crate::field;

/// Decode outcome of a [`OneSparse`] sketch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OneSparseDecode {
    /// The sketched vector is (almost surely) all zeros.
    Zero,
    /// Exactly one nonzero coordinate `(index, multiplicity)`.
    One(u64, i64),
    /// More than one nonzero coordinate (or a fingerprint mismatch).
    Many,
}

/// A linear one-sparse recovery sketch. 3 words.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct OneSparse {
    /// Σ δᵢ (exact, signed).
    count: i64,
    /// Σ δᵢ · indexᵢ (exact, signed; indices < 2^63/|Σδ| in practice).
    weighted: i128,
    /// Σ δᵢ · z^{indexᵢ} (mod P).
    fingerprint: u64,
}

impl OneSparse {
    /// The empty sketch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` copies of `index` (negative `delta` removes).
    ///
    /// `z` is the fingerprint base shared by all sketches that will be
    /// merged together (drawn once per sketch family).
    pub fn update(&mut self, index: u64, delta: i64, z: u64) {
        self.count += delta;
        self.weighted += index as i128 * delta as i128;
        let term = field::mul(field::from_i64(delta), field::pow(z, index));
        self.fingerprint = field::add(self.fingerprint, term);
    }

    /// Merges another sketch built with the same `z` (linearity).
    #[inline]
    pub fn merge(&mut self, other: &OneSparse) {
        self.count += other.count;
        self.weighted += other.weighted;
        self.fingerprint = field::add(self.fingerprint, other.fingerprint);
    }

    /// Batched merge of equal-length cell slices: `dst[i] += src[i]` for
    /// every cell. Asserting the lengths up front lets the compiler drop
    /// per-cell bounds checks and unroll the word-level add loop — the
    /// ℓ0-sampler merge ([`L0Sampler::merge`](crate::L0Sampler::merge))
    /// calls this once per sketch instead of bounds-checking per cell.
    pub fn merge_slices(dst: &mut [OneSparse], src: &[OneSparse]) {
        assert_eq!(dst.len(), src.len(), "cell count mismatch");
        for (a, b) in dst.iter_mut().zip(src) {
            a.merge(b);
        }
    }

    /// Attempts recovery.
    pub fn decode(&self, z: u64) -> OneSparseDecode {
        if self.count == 0 {
            return if self.weighted == 0 && self.fingerprint == 0 {
                OneSparseDecode::Zero
            } else {
                OneSparseDecode::Many
            };
        }
        if self.weighted % self.count as i128 != 0 {
            return OneSparseDecode::Many;
        }
        let idx = self.weighted / self.count as i128;
        if idx < 0 {
            return OneSparseDecode::Many;
        }
        let idx = idx as u64;
        let expect = field::mul(field::from_i64(self.count), field::pow(z, idx));
        if expect == self.fingerprint {
            OneSparseDecode::One(idx, self.count)
        } else {
            OneSparseDecode::Many
        }
    }

    /// Whether the sketch is identically zero.
    pub fn is_zero(&self) -> bool {
        self.count == 0 && self.weighted == 0 && self.fingerprint == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const Z: u64 = 0x1234_5678_9ABC;

    #[test]
    fn recovers_single_item() {
        let mut s = OneSparse::new();
        s.update(42, 3, Z);
        assert_eq!(s.decode(Z), OneSparseDecode::One(42, 3));
    }

    #[test]
    fn cancellation_yields_zero() {
        let mut s = OneSparse::new();
        s.update(7, 1, Z);
        s.update(7, -1, Z);
        assert!(s.is_zero());
        assert_eq!(s.decode(Z), OneSparseDecode::Zero);
    }

    #[test]
    fn two_items_are_rejected() {
        let mut s = OneSparse::new();
        s.update(3, 1, Z);
        s.update(11, 1, Z);
        assert_eq!(s.decode(Z), OneSparseDecode::Many);
    }

    #[test]
    fn adversarial_equal_weights_rejected_by_fingerprint() {
        // count=2, weighted=2*7 → candidate index 7, but the vector is
        // {6: +1, 8: +1}. The fingerprint catches it.
        let mut s = OneSparse::new();
        s.update(6, 1, Z);
        s.update(8, 1, Z);
        assert_eq!(s.decode(Z), OneSparseDecode::Many);
    }

    #[test]
    fn merge_is_linear() {
        let mut a = OneSparse::new();
        let mut b = OneSparse::new();
        a.update(5, 2, Z);
        b.update(5, -1, Z);
        b.update(9, 1, Z);
        a.merge(&b);
        // Vector is {5: +1, 9: +1} -> Many.
        assert_eq!(a.decode(Z), OneSparseDecode::Many);
        let mut c = OneSparse::new();
        c.update(9, -1, Z);
        a.merge(&c);
        assert_eq!(a.decode(Z), OneSparseDecode::One(5, 1));
    }

    #[test]
    fn negative_multiplicity_roundtrips() {
        let mut s = OneSparse::new();
        s.update(13, -4, Z);
        assert_eq!(s.decode(Z), OneSparseDecode::One(13, -4));
    }
}
