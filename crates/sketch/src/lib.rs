//! AGM linear graph sketches (Ahn–Guha–McGregor \[1, 2\]) with the
//! ℓ0-sampling machinery of Jowhari–Sağlam–Tardos \[36\].
//!
//! The heterogeneous-MPC paper ports the `O(1)`-round connectivity algorithm
//! of \[1\] to its model (Appendix C.1): each vertex `v` gets a *linear*
//! sketch `s(v)` of its incidence vector; linearity means
//! `s(v₁) + … + s(vₖ)` sketches the *outgoing* edges of the component
//! `{v₁, …, vₖ}` (internal edges cancel thanks to the ±1 orientation trick),
//! so a single machine holding all sketches can run Borůvka locally without
//! ever seeing the graph. Small machines build partial sketches from their
//! local edges and the sketches are summed with the aggregation primitive —
//! exactly Property 1 in the paper's proof of Theorem C.1.
//!
//! Shared randomness is replaced by `O(log n)`-wise independent hash
//! functions whose seeds one machine draws and disseminates, as the paper
//! prescribes; all hashing here is seeded and deterministic.
//!
//! # Example
//!
//! ```
//! use mpc_sketch::{SketchFamily, VertexSketch};
//!
//! // A 4-vertex path 0-1-2-3 sketched vertex by vertex.
//! let fam = SketchFamily::new(4, 1, 42);
//! let mut s: Vec<VertexSketch> = (0..4).map(|v| fam.empty(0)).collect();
//! for &(u, v) in &[(0u32, 1u32), (1, 2), (2, 3)] {
//!     fam.add_edge(&mut s[u as usize], u, v);
//!     fam.add_edge(&mut s[v as usize], v, u);
//! }
//! // The component {0, 1} has exactly one outgoing edge: (1, 2).
//! let mut combined = s[0].clone();
//! combined.merge(&s[1]);
//! let (u, v) = fam.decode(&combined).expect("one outgoing edge");
//! assert_eq!((u, v), (1, 2));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod connectivity;
pub mod field;
pub mod hashing;
pub mod l0;
pub mod onesparse;

pub use connectivity::sketch_connectivity;
pub use l0::{L0Sampler, SketchFamily, SparseSketch, VertexSketch};
pub use onesparse::{OneSparse, OneSparseDecode};
