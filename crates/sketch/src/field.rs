//! Arithmetic in the prime field `F_p`, `p = 2^61 − 1` (Mersenne).
//!
//! Used for polynomial (k-wise independent) hashing and fingerprinting.
//! The Mersenne modulus admits a fast reduction without division.

/// The field modulus `2^61 − 1`.
pub const P: u64 = (1 << 61) - 1;

/// Reduces a 128-bit value modulo `P`.
#[inline]
pub fn reduce128(x: u128) -> u64 {
    // Split into 61-bit limbs and fold; at most two folds are needed.
    let lo = (x & P as u128) as u64;
    let hi = x >> 61;
    let folded = lo as u128 + hi;
    let lo2 = (folded & P as u128) as u64;
    let hi2 = (folded >> 61) as u64;
    let mut r = lo2 + hi2;
    if r >= P {
        r -= P;
    }
    r
}

/// `a + b (mod P)`; inputs must be `< P`.
#[inline]
pub fn add(a: u64, b: u64) -> u64 {
    let mut r = a + b;
    if r >= P {
        r -= P;
    }
    r
}

/// `a − b (mod P)`; inputs must be `< P`.
#[inline]
pub fn sub(a: u64, b: u64) -> u64 {
    if a >= b {
        a - b
    } else {
        a + P - b
    }
}

/// `a · b (mod P)`; inputs must be `< P`.
#[inline]
pub fn mul(a: u64, b: u64) -> u64 {
    reduce128(a as u128 * b as u128)
}

/// `b^e (mod P)` by square-and-multiply.
pub fn pow(mut b: u64, mut e: u64) -> u64 {
    let mut acc = 1u64;
    b %= P;
    while e > 0 {
        if e & 1 == 1 {
            acc = mul(acc, b);
        }
        b = mul(b, b);
        e >>= 1;
    }
    acc
}

/// Maps a signed multiplicity into the field (`δ mod P`).
#[inline]
pub fn from_i64(x: i64) -> u64 {
    if x >= 0 {
        (x as u64) % P
    } else {
        sub(0, ((-x) as u64) % P)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduction_matches_u128_mod() {
        for &x in &[0u128, 1, P as u128, P as u128 + 1, u128::MAX / 3, u128::MAX] {
            assert_eq!(reduce128(x) as u128, x % P as u128, "x = {x}");
        }
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = P - 3;
        let b = 7;
        assert_eq!(sub(add(a, b), b), a);
        assert_eq!(add(sub(a, b), b), a);
    }

    #[test]
    fn mul_commutes_and_distributes() {
        let (a, b, c) = (123_456_789_u64, P - 42, 987_654_321);
        assert_eq!(mul(a, b), mul(b, a));
        assert_eq!(mul(a, add(b, c)), add(mul(a, b), mul(a, c)));
    }

    #[test]
    fn pow_small_cases() {
        assert_eq!(pow(2, 10), 1024);
        assert_eq!(pow(5, 0), 1);
        assert_eq!(pow(P - 1, 2), 1); // (-1)^2
    }

    #[test]
    fn signed_embedding() {
        assert_eq!(from_i64(5), 5);
        assert_eq!(add(from_i64(-5), 5), 0);
    }
}
