//! Property tests for the sketch stack: linearity, cancellation, and the
//! "decoded edges are always real" guarantee that makes sketch-Borůvka
//! unions safe.

use mpc_graph::generators;
use mpc_sketch::{sketch_connectivity, SketchFamily, SparseSketch};
use proptest::prelude::*;
use std::collections::BTreeSet;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Merging all vertex sketches of a component cancels its internal
    /// edges exactly: for a whole connected graph the sum is zero.
    #[test]
    fn full_graph_sum_is_zero(n in 4usize..60, seed in any::<u64>(), extra in 0usize..40) {
        let g = generators::gnm(n, (n - 1 + extra).min(n * (n - 1) / 2), seed);
        let fam = SketchFamily::new(n, 1, seed);
        let mut total = fam.empty(0);
        for e in g.edges() {
            let mut su = fam.empty(0);
            let mut sv = fam.empty(0);
            fam.add_edge(&mut su, e.u, e.v);
            fam.add_edge(&mut sv, e.v, e.u);
            total.merge(&su);
            total.merge(&sv);
        }
        prop_assert!(total.is_zero());
    }

    /// Decoded edges are always real edges of the sketched graph —
    /// fingerprints make false positives (which would corrupt Borůvka)
    /// effectively impossible.
    #[test]
    fn decodes_are_always_real_edges(n in 6usize..80, m_factor in 1usize..4, seed in any::<u64>()) {
        let g = generators::gnm(n, (n * m_factor).min(n * (n - 1) / 2), seed);
        let real: BTreeSet<(u32, u32)> = g.edges().iter().map(|e| (e.u, e.v)).collect();
        let fam = SketchFamily::new(n, 1, seed ^ 0xF00D);
        for v in 0..n as u32 {
            let mut s = fam.empty(0);
            for e in g.edges() {
                if e.u == v {
                    fam.add_edge(&mut s, e.u, e.v);
                } else if e.v == v {
                    fam.add_edge(&mut s, e.v, e.u);
                }
            }
            if let Some((a, b)) = fam.decode(&s) {
                let key = (a.min(b), a.max(b));
                prop_assert!(real.contains(&key), "decoded fake edge {:?}", key);
            }
        }
    }

    /// Sparse and dense sketch construction agree regardless of edge order.
    #[test]
    fn sparse_equals_dense_under_permutation(
        edges in proptest::collection::vec((0u32..40, 0u32..40), 1..80),
        seed in any::<u64>(),
    ) {
        let fam = SketchFamily::new(40, 1, seed);
        let mut dense = fam.empty(0);
        let mut sparse = SparseSketch::new();
        for &(u, v) in &edges {
            if u == v { continue; }
            fam.add_edge(&mut dense, u, v);
            fam.add_edge_sparse(&mut sparse, 0, u, v);
        }
        prop_assert_eq!(fam.to_dense(&sparse), dense);
    }

    /// End-to-end: sketch connectivity equals true components w.h.p.
    /// (fixed seeds keep this deterministic; the phase count is the
    /// standard 2·log n + 2).
    #[test]
    fn connectivity_matches_reference(n in 8usize..60, density in 1usize..4, seed in 0u64..500) {
        let g = generators::gnm(n, (n * density).min(n * (n - 1) / 2), seed);
        let phases = 2 * ((n as f64).log2().ceil() as usize) + 2;
        let fam = SketchFamily::new(n, phases, seed ^ 0xAB);
        let rows = mpc_sketch::connectivity::sketch_graph(
            &fam,
            n,
            g.edges().iter().map(|e| (e.u, e.v)).collect::<Vec<_>>(),
        );
        let got = sketch_connectivity(&fam, &rows, n);
        let want = mpc_graph::traversal::connected_components(&g);
        prop_assert_eq!(got, want);
    }
}
