//! # het-mpc
//!
//! A from-scratch Rust reproduction of **Fischer, Horowitz & Oshman,
//! “Massively Parallel Computation in a Heterogeneous Regime” (PODC 2022)**:
//! a deterministic simulator for the heterogeneous MPC model (one
//! near-linear machine + many sublinear machines) together with every
//! algorithm the paper introduces or ports, the baselines it compares
//! against, and validation oracles for all of them.
//!
//! This crate is a facade: it re-exports the workspace members under short
//! names. See `README.md` for the architecture and `DESIGN.md` /
//! `EXPERIMENTS.md` for the paper-to-code mapping.
//!
//! ## Quickstart
//!
//! ```
//! use het_mpc::prelude::*;
//!
//! // A weighted random graph with n = 256, m = 2048.
//! let g = generators::gnm(256, 2048, 42).with_random_weights(1 << 16, 42);
//!
//! // A heterogeneous cluster: machine 0 near-linear, the rest sublinear.
//! let mut cluster = Cluster::new(ClusterConfig::new(g.n(), g.m()).seed(42));
//! let input = common::distribute_edges(&cluster, &g);
//!
//! // Exact MST in O(log log(m/n)) rounds on the parallel execution
//! // engine, through the Algorithm registry — verified against Kruskal.
//! let result = registry::run(
//!     "mst",
//!     &mut cluster,
//!     &AlgoInput::new(g.n(), &input),
//!     ExecMode::Parallel,
//! )
//! .unwrap()
//! .into_mst()
//! .unwrap();
//! assert!(mst::is_minimum_spanning_forest(&g, &result.forest));
//! println!("MST of weight {} in {} rounds", result.forest.total_weight, cluster.rounds());
//! ```
//!
//! Or serve several tenants from one engine run — the job-queue
//! [`Service`](mpc_exec::service) interleaves different registry programs
//! in a single bulk-synchronous wave (DESIGN.md §2.8), each job's result
//! bit-identical to a solo run seeded with its job seed:
//!
//! ```
//! use het_mpc::prelude::*;
//! use std::sync::Arc;
//!
//! let g = Arc::new(generators::gnm(128, 768, 42).with_random_weights(1 << 12, 42));
//! let mut service = Service::new(
//!     ClusterConfig::new(g.n(), g.m()).seed(42).polylog_exponent(2.6),
//! )
//! .capacity_shares(3);
//!
//! // Three concurrent jobs — a spanner, a matching, and a min cut.
//! let spanner = service.submit(JobSpec::new("spanner", g.clone()).seed(1).spanner_k(3)).unwrap();
//! let matching = service.submit(JobSpec::new("matching", g.clone()).seed(2)).unwrap();
//! let mincut = service.submit(JobSpec::new("mincut", g.clone()).seed(3).mincut_trials(4)).unwrap();
//!
//! let run = service.run(ExecMode::Serial).unwrap(); // or Parallel: bit-identical
//! assert_eq!(run.records.len(), 3);
//! let spanner = spanner.take_result().unwrap().unwrap().into_spanner().unwrap();
//! let matching = matching.take_result().unwrap().unwrap().into_matching().unwrap();
//! let mincut = mincut.take_result().unwrap().unwrap().into_mincut().unwrap();
//! println!(
//!     "{} spanner edges, {} matched, cut {} — in {} shared rounds",
//!     spanner.spanner.m(), matching.matching.len(), mincut.value, run.rounds,
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use mpc_baselines as baselines;
pub use mpc_core as core;
pub use mpc_exec as exec;
pub use mpc_graph as graph;
pub use mpc_labeling as labeling;
pub use mpc_runtime as runtime;
pub use mpc_sketch as sketch;

/// The most common imports, bundled.
///
/// The call-style entry points exported here (`heterogeneous_mst`,
/// `heterogeneous_matching`, `heterogeneous_spanner`, ...) are the
/// **engine-backed adapters**: the legacy cluster-owning loops in
/// `mpc-core` survive as reference implementations (and as the oracle the
/// equivalence tests compare against), but everything routed through this
/// facade runs on the [`registry`](mpc_exec::registry) and the parallel
/// [`Executor`](mpc_exec::Executor).
pub mod prelude {
    pub use mpc_core::common;
    pub use mpc_core::{matching, mst, ported, spanner};
    pub use mpc_exec::adapters::{
        approximate_min_cut, approximate_mst_weight, heterogeneous_coloring,
        heterogeneous_connectivity, heterogeneous_matching, heterogeneous_min_cut,
        heterogeneous_mis, heterogeneous_mst, heterogeneous_spanner,
        heterogeneous_spanner_weighted,
    };
    pub use mpc_exec::registry::{self, AlgoInput, AlgoOutput};
    pub use mpc_exec::{
        ExecError, ExecMode, Executor, JobHandle, JobParams, JobRecord, JobSpec, JobStatus,
        MachineProgram, Service, ServiceRun, StepOutcome,
    };
    pub use mpc_graph::{generators, Edge, Graph, VertexId};
    pub use mpc_runtime::{
        Cluster, ClusterConfig, CostModel, Enforcement, Fault, FaultPlan, RecoveryPolicy,
        ShardedVec, Topology,
    };
}
