//! # het-mpc
//!
//! A from-scratch Rust reproduction of **Fischer, Horowitz & Oshman,
//! “Massively Parallel Computation in a Heterogeneous Regime” (PODC 2022)**:
//! a deterministic simulator for the heterogeneous MPC model (one
//! near-linear machine + many sublinear machines) together with every
//! algorithm the paper introduces or ports, the baselines it compares
//! against, and validation oracles for all of them.
//!
//! This crate is a facade: it re-exports the workspace members under short
//! names. See `README.md` for the architecture and `DESIGN.md` /
//! `EXPERIMENTS.md` for the paper-to-code mapping.
//!
//! ## Quickstart
//!
//! ```
//! use het_mpc::prelude::*;
//!
//! // A weighted random graph with n = 256, m = 2048.
//! let g = generators::gnm(256, 2048, 42).with_random_weights(1 << 16, 42);
//!
//! // A heterogeneous cluster: machine 0 near-linear, the rest sublinear.
//! let mut cluster = Cluster::new(ClusterConfig::new(g.n(), g.m()).seed(42));
//! let input = common::distribute_edges(&cluster, &g);
//!
//! // Exact MST in O(log log(m/n)) rounds on the parallel execution
//! // engine, through the Algorithm registry — verified against Kruskal.
//! let result = registry::run(
//!     "mst",
//!     &mut cluster,
//!     &AlgoInput::new(g.n(), &input),
//!     ExecMode::Parallel,
//! )
//! .unwrap()
//! .into_mst()
//! .unwrap();
//! assert!(mst::is_minimum_spanning_forest(&g, &result.forest));
//! println!("MST of weight {} in {} rounds", result.forest.total_weight, cluster.rounds());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use mpc_baselines as baselines;
pub use mpc_core as core;
pub use mpc_exec as exec;
pub use mpc_graph as graph;
pub use mpc_labeling as labeling;
pub use mpc_runtime as runtime;
pub use mpc_sketch as sketch;

/// The most common imports, bundled.
///
/// The call-style entry points exported here (`heterogeneous_mst`,
/// `heterogeneous_matching`, `heterogeneous_spanner`, ...) are the
/// **engine-backed adapters**: the legacy cluster-owning loops in
/// `mpc-core` survive as reference implementations (and as the oracle the
/// equivalence tests compare against), but everything routed through this
/// facade runs on the [`registry`](mpc_exec::registry) and the parallel
/// [`Executor`](mpc_exec::Executor).
pub mod prelude {
    pub use mpc_core::common;
    pub use mpc_core::{matching, mst, ported, spanner};
    pub use mpc_exec::adapters::{
        approximate_min_cut, approximate_mst_weight, heterogeneous_coloring,
        heterogeneous_connectivity, heterogeneous_matching, heterogeneous_min_cut,
        heterogeneous_mis, heterogeneous_mst, heterogeneous_spanner,
        heterogeneous_spanner_weighted,
    };
    pub use mpc_exec::registry::{self, AlgoInput, AlgoOutput};
    pub use mpc_exec::{ExecError, ExecMode, Executor, MachineProgram, StepOutcome};
    pub use mpc_graph::{generators, Edge, Graph, VertexId};
    pub use mpc_runtime::{
        Cluster, ClusterConfig, CostModel, Enforcement, Fault, FaultPlan, RecoveryPolicy,
        ShardedVec, Topology,
    };
}
