//! # het-mpc
//!
//! A from-scratch Rust reproduction of **Fischer, Horowitz & Oshman,
//! “Massively Parallel Computation in a Heterogeneous Regime” (PODC 2022)**:
//! a deterministic simulator for the heterogeneous MPC model (one
//! near-linear machine + many sublinear machines) together with every
//! algorithm the paper introduces or ports, the baselines it compares
//! against, and validation oracles for all of them.
//!
//! This crate is a facade: it re-exports the workspace members under short
//! names. See `README.md` for the architecture and `DESIGN.md` /
//! `EXPERIMENTS.md` for the paper-to-code mapping.
//!
//! ## Quickstart
//!
//! ```
//! use het_mpc::prelude::*;
//!
//! // A weighted random graph with n = 256, m = 2048.
//! let g = generators::gnm(256, 2048, 42).with_random_weights(1 << 16, 42);
//!
//! // A heterogeneous cluster: machine 0 near-linear, the rest sublinear.
//! let mut cluster = Cluster::new(ClusterConfig::new(g.n(), g.m()).seed(42));
//! let input = common::distribute_edges(&cluster, &g);
//!
//! // Exact MST in O(log log(m/n)) rounds — verified against Kruskal.
//! let result = mst::heterogeneous_mst(&mut cluster, g.n(), input).unwrap();
//! assert!(mst::is_minimum_spanning_forest(&g, &result.forest));
//! println!("MST of weight {} in {} rounds", result.forest.total_weight, cluster.rounds());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use mpc_baselines as baselines;
pub use mpc_core as core;
pub use mpc_exec as exec;
pub use mpc_graph as graph;
pub use mpc_labeling as labeling;
pub use mpc_runtime as runtime;
pub use mpc_sketch as sketch;

/// The most common imports, bundled.
pub mod prelude {
    pub use mpc_core::common;
    pub use mpc_core::matching::{self, heterogeneous_matching};
    pub use mpc_core::mst::{self, heterogeneous_mst};
    pub use mpc_core::ported;
    pub use mpc_core::spanner::{self, heterogeneous_spanner};
    pub use mpc_exec::{ExecMode, Executor, MachineProgram, StepOutcome};
    pub use mpc_graph::{generators, Edge, Graph, VertexId};
    pub use mpc_runtime::{Cluster, ClusterConfig, CostModel, Enforcement, ShardedVec, Topology};
}
